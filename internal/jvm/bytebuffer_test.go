package jvm

import (
	"errors"
	"testing"
	"testing/quick"

	"mv2j/internal/vtime"
)

func TestDirectBufferStableAddress(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(128)
	addr := bb.Address()
	if addr < 0 {
		t.Fatal("direct buffer must have a native address")
	}
	// Force a collection; the direct buffer must not move.
	a := m.MustArray(Byte, 512)
	a.Discard()
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if bb.Address() != addr {
		t.Fatal("GC moved a direct buffer — they must be stable")
	}
}

func TestHeapBufferHasNoAddress(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb, err := m.Allocate(64)
	if err != nil {
		t.Fatal(err)
	}
	if bb.IsDirect() {
		t.Fatal("Allocate produced a direct buffer")
	}
	if bb.Address() != -1 {
		t.Fatal("heap buffer must report no native address (JNI returns NULL)")
	}
}

func TestHeapBufferMovesUnderGC(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	junk := m.MustArray(Byte, 256)
	bb, err := m.Allocate(64)
	if err != nil {
		t.Fatal(err)
	}
	bb.PutByteAt(0, 0x5A)
	raw1 := bb.RawBytes()
	junk.Discard()
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	// Content preserved, but the old raw view is stale: the payload
	// slid to a lower offset.
	if bb.ByteAt(0) != 0x5A {
		t.Fatal("heap buffer contents lost in compaction")
	}
	raw2 := bb.RawBytes()
	if &raw1[0] == &raw2[0] {
		t.Fatal("heap buffer did not move; compaction expected to relocate it")
	}
}

func TestBufferPositionLimitSemantics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(16)
	if b.Position() != 0 || b.Limit() != 16 || b.Capacity() != 16 || b.Remaining() != 16 {
		t.Fatal("fresh buffer state wrong")
	}
	b.PutByte(1)
	b.PutByte(2)
	if b.Position() != 2 || b.Remaining() != 14 {
		t.Fatalf("relative put did not advance: pos=%d", b.Position())
	}
	b.Flip()
	if b.Position() != 0 || b.Limit() != 2 {
		t.Fatalf("Flip: pos=%d limit=%d", b.Position(), b.Limit())
	}
	if b.GetByte() != 1 || b.GetByte() != 2 {
		t.Fatal("read-back after flip wrong")
	}
	b.Rewind()
	if b.Position() != 0 || b.Limit() != 2 {
		t.Fatal("Rewind changed the limit")
	}
	b.Clear()
	if b.Position() != 0 || b.Limit() != 16 {
		t.Fatal("Clear did not restore write state")
	}
}

func TestBufferMarkReset(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(8)
	b.PutByte(9)
	b.Mark()
	b.PutByte(8)
	b.ResetToMark()
	if b.Position() != 1 {
		t.Fatalf("ResetToMark: pos=%d, want 1", b.Position())
	}
	b.SetPosition(0) // moving before the mark discards it
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ResetToMark with discarded mark did not panic")
			}
		}()
		b.ResetToMark()
	}()
}

func TestBufferOrder(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(8)
	if b.Order() != BigEndian {
		t.Fatal("fresh ByteBuffer must default to big-endian, as in Java")
	}
	b.PutIntKindAt(Int, 0, 0x01020304)
	if b.ByteAt(0) != 0x01 || b.ByteAt(3) != 0x04 {
		t.Fatal("big-endian layout wrong")
	}
	b.SetOrder(LittleEndian)
	b.PutIntKindAt(Int, 4, 0x01020304)
	if b.ByteAt(4) != 0x04 || b.ByteAt(7) != 0x01 {
		t.Fatal("little-endian layout wrong")
	}
	// Reading back with the mismatched order must byte-swap.
	b.SetOrder(BigEndian)
	if got := b.IntKindAt(Int, 4); got != 0x04030201 {
		t.Fatalf("cross-order read = %#x, want 0x04030201", got)
	}
}

func TestBufferTypedRoundTrip(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(64)
	b.PutIntKind(Short, -1234)
	b.PutIntKind(Long, 1<<40)
	b.PutFloatKind(Double, 2.75)
	b.PutFloatKind(Float, -0.5)
	b.Flip()
	if b.IntKind(Short) != -1234 || b.IntKind(Long) != 1<<40 {
		t.Fatal("integral round trip failed")
	}
	if b.FloatKind(Double) != 2.75 || b.FloatKind(Float) != -0.5 {
		t.Fatal("float round trip failed")
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(4)
	for _, f := range []func(){
		func() { b.PutIntKindAt(Long, 0, 1) }, // 8 bytes into cap 4
		func() { b.PutByteAt(4, 1) },
		func() { b.PutByteAt(-1, 1) },
		func() { b.SetPosition(5) },
		func() { b.SetLimit(5) },
		func() { b.PutBytes(make([]byte, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("overflow access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBufferArrayBulkTransfer(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Int, 8)
	for i := 0; i < 8; i++ {
		a.SetInt(i, int64(i*3))
	}
	b := m.MustAllocateDirect(64)
	b.PutArray(a, 2, 4) // elements 2..5
	b.Flip()
	out := m.MustArray(Int, 8)
	b.GetArray(out, 1, 4)
	for i := 0; i < 4; i++ {
		if out.Int(1+i) != int64((2+i)*3) {
			t.Fatalf("bulk transfer mismatch at %d: %d", i, out.Int(1+i))
		}
	}
}

func TestBufferBulkIsCheaperThanElementwise(t *testing.T) {
	clock := vtime.NewClock()
	m := NewMachine(clock, Options{HeapSize: 1 << 20, ArenaSize: 1 << 20})
	a := m.MustArray(Byte, 4096)
	b := m.MustAllocateDirect(4096)

	t0 := clock.Now()
	b.PutArray(a, 0, 4096)
	bulk := clock.Now().Sub(t0)

	b.Clear()
	t1 := clock.Now()
	for i := 0; i < 4096; i++ {
		b.PutByte(0)
	}
	elementwise := clock.Now().Sub(t1)

	if bulk*10 > elementwise {
		t.Fatalf("bulk put (%v) should be >10x cheaper than elementwise (%v)", bulk, elementwise)
	}
}

func TestDirectBufferFreeReleasesArena(t *testing.T) {
	m := newTestMachine(t, 1<<12, 1<<12)
	b1 := m.MustAllocateDirect(2048)
	b2 := m.MustAllocateDirect(2048)
	if _, err := m.AllocateDirect(1024); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("arena should be exhausted")
	}
	b1.Free()
	b2.Free()
	if m.DirectUsed() != 0 {
		t.Fatalf("DirectUsed = %d after frees", m.DirectUsed())
	}
	// Coalescing must allow a full-arena allocation again.
	if _, err := m.AllocateDirect(4096); err != nil {
		t.Fatalf("arena did not coalesce: %v", err)
	}
}

func TestAllocateDirectInvalidSize(t *testing.T) {
	m := newTestMachine(t, 1<<12, 1<<12)
	if _, err := m.AllocateDirect(0); err == nil {
		t.Fatal("AllocateDirect(0) must fail")
	}
	if _, err := m.AllocateDirect(-4); err == nil {
		t.Fatal("AllocateDirect(-4) must fail")
	}
}

func TestDirectAllocationIsCostly(t *testing.T) {
	clock := vtime.NewClock()
	m := NewMachine(clock, Options{HeapSize: 1 << 20, ArenaSize: 1 << 20})
	t0 := clock.Now()
	m.MustAllocateDirect(64)
	direct := clock.Now().Sub(t0)
	t1 := clock.Now()
	if _, err := m.NewArray(Byte, 64); err != nil {
		t.Fatal(err)
	}
	heap := clock.Now().Sub(t1)
	if direct < 5*heap {
		t.Fatalf("direct allocation (%v) should be much costlier than heap (%v)", direct, heap)
	}
}

// Property: typed put/get round-trips through a buffer for any value,
// in both byte orders.
func TestBufferRoundTripProperty(t *testing.T) {
	m := newTestMachine(t, 1<<20, 1<<20)
	b := m.MustAllocateDirect(16)
	f := func(v int64, little bool, kindSel uint8) bool {
		kinds := []Kind{Byte, Char, Short, Int, Long}
		k := kinds[int(kindSel)%len(kinds)]
		if little {
			b.SetOrder(LittleEndian)
		} else {
			b.SetOrder(BigEndian)
		}
		b.PutIntKindAt(k, 0, v)
		got := b.IntKindAt(k, 0)
		want := bitsToInt(k, intToBits(k, v))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arena alloc/release in arbitrary orders never corrupts the
// free list (allocations never overlap, full release restores capacity).
func TestArenaProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := newArena(1 << 16)
		type blk struct{ off, size int }
		var blocks []blk
		for _, s := range sizes {
			n := int(s%2048) + 1
			off, err := a.alloc(n)
			if err != nil {
				break
			}
			for _, b := range blocks {
				if off < b.off+b.size && b.off < off+n {
					return false // overlap
				}
			}
			blocks = append(blocks, blk{off, n})
		}
		// Release in reverse-insertion order for odd counts, forward for
		// even, to exercise both coalescing directions.
		if len(blocks)%2 == 0 {
			for _, b := range blocks {
				a.release(b.off, b.size)
			}
		} else {
			for i := len(blocks) - 1; i >= 0; i-- {
				a.release(blocks[i].off, blocks[i].size)
			}
		}
		if a.used != 0 {
			return false
		}
		off, err := a.alloc(1 << 16)
		return err == nil && off == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
