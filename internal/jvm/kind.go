// Package jvm simulates the parts of a Java Virtual Machine that the
// paper's design hinges on: a managed heap whose objects are moved by a
// compacting garbage collector (so raw pointers into it go stale),
// primitive arrays with fast element access, and NIO ByteBuffers —
// heap-allocated ones that are movable like any object, and direct ones
// whose storage lives off-heap at a stable address.
//
// Real bytes are stored and really read back; only the *cost* of each
// access is modeled, charged to the owning rank's virtual clock.
package jvm

import "fmt"

// Kind enumerates Java's primitive component types.
type Kind int

const (
	Byte Kind = iota
	Boolean
	Char
	Short
	Int
	Long
	Float
	Double
	numKinds
)

// Size returns the component size in bytes, matching Java's layout
// (boolean arrays use one byte per element; char is UTF-16, 2 bytes).
func (k Kind) Size() int {
	switch k {
	case Byte, Boolean:
		return 1
	case Char, Short:
		return 2
	case Int, Float:
		return 4
	case Long, Double:
		return 8
	default:
		panic(fmt.Sprintf("jvm: invalid kind %d", int(k)))
	}
}

func (k Kind) String() string {
	switch k {
	case Byte:
		return "byte"
	case Boolean:
		return "boolean"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns all primitive kinds, in declaration order. Handy for
// table-driven tests and for the mpjbuf section-header round trips.
func Kinds() []Kind {
	return []Kind{Byte, Boolean, Char, Short, Int, Long, Float, Double}
}
