package jvm

import (
	"testing"
	"testing/quick"

	"mv2j/internal/vtime"
)

func TestArrayIntRoundTripAllKinds(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	cases := []struct {
		kind Kind
		vals []int64
	}{
		{Byte, []int64{0, 1, -1, 127, -128}},
		{Boolean, []int64{0, 1, 1, 0}},
		{Char, []int64{0, 1, 65535, 'A'}},
		{Short, []int64{0, -1, 32767, -32768}},
		{Int, []int64{0, -1, 1<<31 - 1, -(1 << 31)}},
		{Long, []int64{0, -1, 1<<63 - 1, -(1 << 63)}},
	}
	for _, c := range cases {
		a := m.MustArray(c.kind, len(c.vals))
		for i, v := range c.vals {
			a.SetInt(i, v)
		}
		for i, v := range c.vals {
			if got := a.Int(i); got != v {
				t.Errorf("%v[%d] = %d, want %d", c.kind, i, got, v)
			}
		}
	}
}

func TestArrayFloatRoundTrip(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	f := m.MustArray(Float, 3)
	d := m.MustArray(Double, 3)
	for i, v := range []float64{0, -1.5, 3.25} {
		f.SetFloat(i, v)
		d.SetFloat(i, v)
	}
	for i, v := range []float64{0, -1.5, 3.25} {
		if f.Float(i) != v {
			t.Errorf("float[%d] = %v, want %v", i, f.Float(i), v)
		}
		if d.Float(i) != v {
			t.Errorf("double[%d] = %v, want %v", i, d.Float(i), v)
		}
	}
}

func TestArrayNarrowing(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Byte, 1)
	a.SetInt(0, 300) // 300 & 0xff = 44, sign-extended stays 44
	if got := a.Int(0); got != 44 {
		t.Fatalf("byte narrowing: got %d, want 44", got)
	}
	a.SetInt(0, 200) // 200 as int8 is -56
	if got := a.Int(0); got != -56 {
		t.Fatalf("byte sign extension: got %d, want -56", got)
	}
	b := m.MustArray(Boolean, 1)
	b.SetInt(0, 2)
	if got := b.Int(0); got != 0 {
		t.Fatalf("boolean stores the low bit: 2 -> %d, want 0", got)
	}
}

func TestArrayBoundsPanics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Int, 4)
	for _, f := range []func(){
		func() { a.SetInt(4, 0) },
		func() { a.SetInt(-1, 0) },
		func() { _ = a.Int(4) },
		func() { a.CopyInBytes(13, make([]byte, 4)) },
		func() { a.CopyOutBytes(-1, make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-bounds access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestArrayKindMismatchPanics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	ints := m.MustArray(Int, 1)
	floats := m.MustArray(Double, 1)
	for _, f := range []func(){
		func() { ints.SetFloat(0, 1.0) },
		func() { _ = ints.Float(0) },
		func() { floats.SetInt(0, 1) },
		func() { _ = floats.Int(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("kind-mismatched access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestArrayFill(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Short, 5)
	a.Fill(-7)
	for i := 0; i < 5; i++ {
		if a.Int(i) != -7 {
			t.Fatalf("Fill: a[%d] = %d", i, a.Int(i))
		}
	}
}

func TestArrayBulkCopy(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Byte, 8)
	src := []byte{1, 2, 3, 4}
	a.CopyInBytes(2, src)
	dst := make([]byte, 4)
	a.CopyOutBytes(2, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("bulk copy mismatch at %d: %v vs %v", i, dst, src)
		}
	}
	if a.Int(0) != 0 || a.Int(6) != 0 {
		t.Fatal("bulk copy spilled outside the range")
	}
}

func TestElementAccessCostsCharged(t *testing.T) {
	clock := vtime.NewClock()
	m := NewMachine(clock, Options{HeapSize: 1 << 16, ArenaSize: 1 << 16})
	a := m.MustArray(Byte, 1000)
	start := clock.Now()
	for i := 0; i < 1000; i++ {
		a.SetInt(i, int64(i))
	}
	writeCost := clock.Now().Sub(start)
	want := vtime.PerElement(1000, m.Costs().ArrayWrite)
	if writeCost != want {
		t.Fatalf("1000 array writes charged %v, want %v", writeCost, want)
	}
}

func TestBufferElementAccessSlowerThanArray(t *testing.T) {
	// The mechanism behind Fig. 18: per-element buffer access must cost
	// more than array access.
	c := DefaultCosts()
	if c.BufferWrite <= c.ArrayWrite || c.BufferRead <= c.ArrayRead {
		t.Fatal("cost model must make ByteBuffer element access slower than arrays")
	}
	ratio := float64(c.BufferWrite+c.BufferRead) / float64(c.ArrayWrite+c.ArrayRead)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("buffer/array access ratio %.2f outside plausible [2,6]", ratio)
	}
}

// Property: SetInt/Int round-trips for every integral kind with Java
// narrowing applied.
func TestArrayRoundTripProperty(t *testing.T) {
	m := newTestMachine(t, 1<<20, 1<<16)
	arrays := map[Kind]Array{}
	for _, k := range []Kind{Byte, Char, Short, Int, Long} {
		arrays[k] = m.MustArray(k, 1)
	}
	narrow := func(k Kind, v int64) int64 {
		switch k {
		case Byte:
			return int64(int8(v))
		case Char:
			return int64(uint16(v))
		case Short:
			return int64(int16(v))
		case Int:
			return int64(int32(v))
		default:
			return v
		}
	}
	f := func(kindSel uint8, v int64) bool {
		kinds := []Kind{Byte, Char, Short, Int, Long}
		k := kinds[int(kindSel)%len(kinds)]
		a := arrays[k]
		a.SetInt(0, v)
		return a.Int(0) == narrow(k, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: data written before a GC survives compaction verbatim.
func TestGCPreservesContentsProperty(t *testing.T) {
	f := func(data []byte, garbage uint16) bool {
		if len(data) == 0 {
			data = []byte{0xAA}
		}
		m := NewMachine(vtime.NewClock(), Options{HeapSize: 1 << 20, ArenaSize: 1 << 10})
		junk := m.MustArray(Byte, int(garbage%4096)+1)
		a := m.MustArray(Byte, len(data))
		a.CopyInBytes(0, data)
		junk.Discard()
		if err := m.GC(); err != nil {
			return false
		}
		out := make([]byte, len(data))
		a.CopyOutBytes(0, out)
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
