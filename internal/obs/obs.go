// Package obs wires the observability layer (internal/trace,
// internal/metrics) to command-line programs: one flag set, shared by
// ombj and mv2jrun, that selects which artifacts a run exports and
// writes them after the job completes. Everything exported is a pure
// function of the virtual-time execution, so artifacts are
// byte-identical across runs of the same configuration and seed.
package obs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mv2j/internal/metrics"
	"mv2j/internal/trace"
)

// Sink bundles the observability outputs a CLI run can request.
type Sink struct {
	TraceOut   string
	ChromeOut  string
	MetricsOut string
	Report     bool
	// PPN is the ranks-per-node of the (block-mapped) job; the Chrome
	// exporter maps node -> pid and rank -> tid with it.
	PPN int

	rec *trace.Recorder
	reg *metrics.Registry
}

// AddFlags registers the shared observability flags on the default
// flag set.
func (s *Sink) AddFlags() {
	flag.StringVar(&s.TraceOut, "trace-out", "", "write the event trace as JSONL to this file")
	flag.StringVar(&s.ChromeOut, "chrome-out", "", "write the event trace as Chrome trace_event JSON (open in chrome://tracing or ui.perfetto.dev)")
	flag.StringVar(&s.MetricsOut, "metrics-out", "", "write aggregated metrics (counters, gauges, log2-bucket histograms) as JSON")
	flag.BoolVar(&s.Report, "report", false, "print per-rank rollups and the protocol-phase breakdown after the run")
}

// Recorder returns the trace recorder to attach to the job, creating
// it if any trace-consuming output was requested; nil otherwise.
func (s *Sink) Recorder() *trace.Recorder {
	if s.rec == nil && (s.TraceOut != "" || s.ChromeOut != "" || s.Report) {
		s.rec = trace.New(0)
	}
	return s.rec
}

// ForceRecorder creates the recorder regardless of which outputs were
// requested — for callers with their own trace-consuming feature
// (mv2jrun -trace) that must share one recorder with the sink.
func (s *Sink) ForceRecorder() *trace.Recorder {
	if s.rec == nil {
		s.rec = trace.New(0)
	}
	return s.rec
}

// Registry returns the metrics registry to attach, creating it if
// -metrics-out or -report was requested (the report rolls up the
// deterministic saturation gauges — matcher unexpected-queue
// high-water, flow-control stalls); nil otherwise.
func (s *Sink) Registry() *metrics.Registry {
	if s.reg == nil && (s.MetricsOut != "" || s.Report) {
		s.reg = metrics.NewRegistry()
	}
	return s.reg
}

// Flush writes every requested artifact. The -report text goes to w;
// file artifacts go to their configured paths.
func (s *Sink) Flush(w io.Writer) error {
	if s.rec != nil && s.TraceOut != "" {
		if err := writeFile(s.TraceOut, s.rec.WriteJSONL); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if s.rec != nil && s.ChromeOut != "" {
		ppn := s.PPN
		if ppn < 1 {
			ppn = 1
		}
		write := func(f io.Writer) error {
			return s.rec.WriteChromeTrace(f, trace.ChromeOptions{
				NodeOf: func(rank int) int { return rank / ppn },
			})
		}
		if err := writeFile(s.ChromeOut, write); err != nil {
			return fmt.Errorf("chrome-out: %w", err)
		}
	}
	if s.reg != nil && s.MetricsOut != "" {
		if err := writeFile(s.MetricsOut, s.reg.WriteJSON); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	if s.Report && s.rec != nil {
		if err := s.rec.WriteReport(w); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	if s.Report && s.reg != nil {
		if err := writeSaturation(w, s.reg); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	return nil
}

// writeSaturation appends the deterministic backpressure gauges to the
// report: per-rank matcher unexpected-queue high-water marks and the
// flow-control stall counters. Everything here is a max-gauge or
// counter charged on the virtual timeline, so the table is
// byte-identical across runs (and absent entirely when no queue ever
// buffered a message and no sender ever stalled).
func writeSaturation(w io.Writer, reg *metrics.Registry) error {
	snap := reg.Snapshot()
	var rows []metrics.ScalarSnap
	for _, g := range snap.Gauges {
		if g.Kind == "match" {
			rows = append(rows, g)
		}
	}
	for _, c := range snap.Counters {
		if c.Kind == "flow" {
			rows = append(rows, c)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\nsaturation (deterministic)\n%6s  %-6s %-22s %12s\n",
		"rank", "kind", "label", "value"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%6d  %-6s %-22s %12d\n",
			r.Rank, r.Kind, r.Label, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// writeFile streams one artifact to path ("-" means stdout).
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
