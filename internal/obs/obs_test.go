package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mv2j/internal/trace"
)

func TestSinkDisabledByDefault(t *testing.T) {
	var s Sink
	if s.Recorder() != nil {
		t.Fatal("recorder created with no outputs requested")
	}
	if s.Registry() != nil {
		t.Fatal("registry created with no outputs requested")
	}
	var buf bytes.Buffer
	if err := s.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("idle flush produced output: %q", buf.String())
	}
}

func TestSinkWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	s := Sink{
		TraceOut:   filepath.Join(dir, "t.jsonl"),
		ChromeOut:  filepath.Join(dir, "c.json"),
		MetricsOut: filepath.Join(dir, "m.json"),
		Report:     true,
		PPN:        2,
	}
	rec := s.Recorder()
	if rec == nil {
		t.Fatal("no recorder despite trace outputs")
	}
	if s.ForceRecorder() != rec {
		t.Fatal("ForceRecorder did not return the shared recorder")
	}
	rec.Record(trace.Event{Rank: 0, Kind: trace.KindSend, Peer: 1, Bytes: 8, Start: 0, End: 100})
	rec.Record(trace.Event{Rank: 1, Kind: trace.KindRecv, Peer: 0, Bytes: 8, Start: 0, End: 150})
	reg := s.Registry()
	if reg == nil {
		t.Fatal("no registry despite -metrics-out")
	}
	reg.Add(0, "proc", "msgs_sent", 1)

	var report bytes.Buffer
	if err := s.Flush(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "rank") {
		t.Fatalf("report missing rollup table:\n%s", report.String())
	}

	events, dropped, err := trace.ParseJSONL(mustOpen(t, s.TraceOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || dropped != 0 {
		t.Fatalf("JSONL artifact: %d events, %d dropped", len(events), dropped)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(mustRead(t, s.ChromeOut), &chrome); err != nil {
		t.Fatalf("chrome artifact: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome artifact has no events")
	}
	var m struct {
		Counters []map[string]any `json:"counters"`
	}
	if err := json.Unmarshal(mustRead(t, s.MetricsOut), &m); err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if len(m.Counters) != 1 {
		t.Fatalf("metrics artifact counters: %+v", m.Counters)
	}
}

// TestReportSaturationSection pins the -report rollup of the
// deterministic backpressure gauges: -report alone must create the
// registry, and any match gauge or flow counter present must render in
// the saturation table.
func TestReportSaturationSection(t *testing.T) {
	s := Sink{Report: true}
	rec := s.Recorder()
	if rec == nil {
		t.Fatal("no recorder despite -report")
	}
	reg := s.Registry()
	if reg == nil {
		t.Fatal("-report alone did not create the registry")
	}
	rec.Record(trace.Event{Rank: 0, Kind: trace.KindSend, Peer: 1, Bytes: 8, Start: 0, End: 100})
	reg.SetMaxGauge(0, "match", "unexp_bytes_hiwater", 4096)
	reg.SetMaxGauge(0, "match", "unexp_depth_hiwater", 4)
	reg.Add(1, "flow", "rnr_parks", 3)
	reg.Add(0, "proc", "msgs_sent", 9) // not a saturation row

	var report bytes.Buffer
	if err := s.Flush(&report); err != nil {
		t.Fatal(err)
	}
	out := report.String()
	for _, want := range []string{"saturation (deterministic)", "unexp_bytes_hiwater", "unexp_depth_hiwater", "rnr_parks"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "msgs_sent") {
		t.Errorf("saturation table leaked non-saturation counter:\n%s", out)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
