package npb

import (
	"fmt"
	"math"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

// EP is the embarrassingly parallel kernel: generate pairs of uniform
// deviates with the NPB LCG, accept pairs inside the unit circle, form
// Gaussian deviates by the Marsaglia polar method, and tally them into
// concentric square annuli. Communication is a single reduction of the
// tallies — the kernel measures compute scaling and reduction cost.
type EPConfig struct {
	// LogPairs sets the problem size: 2^LogPairs pairs (NPB class S is
	// 24; keep it ~16-20 for simulation speed).
	LogPairs int
	Nodes    int
	PPN      int
	Lib      string
	Flavor   core.Flavor
}

// epCounts tallies one substream of pairs: hits per annulus plus the
// sums of the generated Gaussians.
func epCounts(seed uint64, first, count uint64) (q [10]float64, sx, sy float64) {
	g := &lcg{}
	g.skipTo(seed, 2*first)
	for i := uint64(0); i < count; i++ {
		x := 2*g.next() - 1
		y := 2*g.next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l < 10 {
			q[l]++
		}
		sx += gx
		sy += gy
	}
	return
}

// RunEP executes the kernel distributed and verifies against the
// serial tally.
func RunEP(cfg EPConfig) (Result, error) {
	if err := checkShape(cfg.Nodes, cfg.PPN); err != nil {
		return Result{}, err
	}
	if cfg.LogPairs < 4 || cfg.LogPairs > 30 {
		return Result{}, fmt.Errorf("npb: EP LogPairs %d out of range [4,30]", cfg.LogPairs)
	}
	prof, _ := profile.ByName(cfg.Lib)
	total := uint64(1) << cfg.LogPairs
	const seed = 271828183

	return run(core.Config{Nodes: cfg.Nodes, PPN: cfg.PPN, Lib: prof, Flavor: cfg.Flavor},
		func(mpi *core.MPI, out *collector) error {
			world := mpi.CommWorld()
			p := uint64(world.Size())
			me := uint64(world.Rank())
			chunk := total / p
			first := me * chunk
			count := chunk
			if me == p-1 {
				count = total - first
			}

			q, sx, sy := epCounts(seed, first, count)

			// Reduce [q0..q9, sx, sy] in one vector.
			local := mpi.JVM().MustArray(jvm.Double, 12)
			global := mpi.JVM().MustArray(jvm.Double, 12)
			for i := 0; i < 10; i++ {
				local.SetFloat(i, q[i])
			}
			local.SetFloat(10, sx)
			local.SetFloat(11, sy)
			if err := world.Allreduce(local, global, 12, core.DOUBLE, core.SUM); err != nil {
				return err
			}

			if world.Rank() == 0 {
				// Verification: the distributed tallies must equal the
				// serial single-stream tallies exactly (annulus counts
				// are integers; the Gaussian sums may differ only by
				// FP reduction order).
				wq, wsx, wsy := epCounts(seed, 0, total)
				verified := true
				var hits float64
				for i := 0; i < 10; i++ {
					hits += global.Float(i)
					if global.Float(i) != wq[i] {
						verified = false
					}
				}
				if math.Abs(global.Float(10)-wsx) > 1e-8*math.Abs(wsx)+1e-9 ||
					math.Abs(global.Float(11)-wsy) > 1e-8*math.Abs(wsy)+1e-9 {
					verified = false
				}
				out.fromRoot(Result{
					Verified: verified,
					Checksum: hits,
					Detail: fmt.Sprintf("EP 2^%d pairs, %0.f gaussians, sums (%.6f, %.6f)",
						cfg.LogPairs, hits, global.Float(10), global.Float(11)),
				})
			}
			return nil
		})
}
