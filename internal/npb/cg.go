package npb

import (
	"fmt"
	"math"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

// CG estimates the smallest eigenvalue of a sparse symmetric
// positive-definite matrix by inverse power iteration, solving each
// linear system with conjugate gradients — the NPB CG structure. Rows
// are block-distributed; the matrix-vector product gathers the full
// iterate with Allgatherv, and the dot products are Allreduces: the
// kernel is a communication-intensity stress of the bindings.
type CGConfig struct {
	// N is the matrix dimension.
	N int
	// Nonzeros per row band half-width (tridiagonal-style band plus a
	// wrap-around coupling, keeping the matrix SPD).
	Band int
	// PowerIters is the number of inverse-power steps; CGIters the CG
	// steps per solve.
	PowerIters, CGIters int
	Nodes, PPN          int
	Lib                 string
	Flavor              core.Flavor
}

// cgMatrix is the deterministic SPD operator: a banded Toeplitz-like
// matrix A[i][j] = band profile + strong diagonal, identical on every
// rank.
type cgMatrix struct {
	n, band int
}

func (m cgMatrix) at(i, j int) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return float64(2*m.band) + 4 // diagonal dominance => SPD
	}
	if d <= m.band {
		return -1.0 / float64(d)
	}
	return 0
}

// matvecRows computes y[lo:hi) = A[lo:hi,:] * x.
func (m cgMatrix) matvecRows(lo, hi int, x []float64, y []float64) {
	for i := lo; i < hi; i++ {
		jLo := i - m.band
		if jLo < 0 {
			jLo = 0
		}
		jHi := i + m.band
		if jHi > m.n-1 {
			jHi = m.n - 1
		}
		acc := 0.0
		for j := jLo; j <= jHi; j++ {
			acc += m.at(i, j) * x[j]
		}
		y[i-lo] = acc
	}
}

// cgSerial is the reference single-process implementation.
func cgSerial(cfg CGConfig) float64 {
	m := cgMatrix{n: cfg.N, band: cfg.Band}
	x := make([]float64, cfg.N)
	for i := range x {
		x[i] = 1
	}
	var zeta float64
	z := make([]float64, cfg.N)
	r := make([]float64, cfg.N)
	p := make([]float64, cfg.N)
	q := make([]float64, cfg.N)
	for it := 0; it < cfg.PowerIters; it++ {
		// Solve A z = x with CG.
		for i := range z {
			z[i] = 0
			r[i] = x[i]
			p[i] = x[i]
		}
		rho := dot(r, r)
		for k := 0; k < cfg.CGIters; k++ {
			m.matvecRows(0, cfg.N, p, q)
			alpha := rho / dot(p, q)
			for i := range z {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
			rho2 := dot(r, r)
			beta := rho2 / rho
			rho = rho2
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		}
		// zeta = shift + 1 / (x . z); x = z / ||z||.
		xz := dot(x, z)
		zeta = 1.0 / xz
		norm := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return zeta
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// RunCG executes the distributed kernel and verifies the eigenvalue
// estimate against the serial reference.
func RunCG(cfg CGConfig) (Result, error) {
	if err := checkShape(cfg.Nodes, cfg.PPN); err != nil {
		return Result{}, err
	}
	p := cfg.Nodes * cfg.PPN
	if cfg.N < p || cfg.N%p != 0 {
		return Result{}, fmt.Errorf("npb: CG needs N (%d) divisible by ranks (%d)", cfg.N, p)
	}
	prof, _ := profile.ByName(cfg.Lib)
	want := cgSerial(cfg)

	return run(core.Config{Nodes: cfg.Nodes, PPN: cfg.PPN, Lib: prof, Flavor: cfg.Flavor},
		func(mpi *core.MPI, out *collector) error {
			world := mpi.CommWorld()
			np := world.Size()
			me := world.Rank()
			rows := cfg.N / np
			lo, hi := me*rows, (me+1)*rows
			m := cgMatrix{n: cfg.N, band: cfg.Band}

			counts := make([]int, np)
			displs := make([]int, np)
			for r := 0; r < np; r++ {
				counts[r] = rows
				displs[r] = r * rows
			}

			// Distributed state: full-length x (replicated via
			// allgather), local slices of z, r, p, q.
			x := make([]float64, cfg.N)
			for i := range x {
				x[i] = 1
			}
			zL := make([]float64, rows)
			rL := make([]float64, rows)
			pFull := make([]float64, cfg.N) // p must be full for matvec
			qL := make([]float64, rows)

			// Scratch Java arrays for communication.
			sendRow := mpi.JVM().MustArray(jvm.Double, rows)
			gathered := mpi.JVM().MustArray(jvm.Double, cfg.N)
			scal1 := mpi.JVM().MustArray(jvm.Double, 1)
			scal2 := mpi.JVM().MustArray(jvm.Double, 1)

			// allgatherRows refreshes full[:] from each rank's local
			// slice via Allgatherv on the Java arrays.
			allgatherRows := func(local []float64, full []float64) error {
				for i := 0; i < rows; i++ {
					sendRow.SetFloat(i, local[i])
				}
				if err := world.Allgatherv(sendRow, rows, gathered, counts, displs, core.DOUBLE); err != nil {
					return err
				}
				for i := 0; i < cfg.N; i++ {
					full[i] = gathered.Float(i)
				}
				return nil
			}

			sumScalar := func(v float64) (float64, error) {
				scal1.SetFloat(0, v)
				if err := world.Allreduce(scal1, scal2, 1, core.DOUBLE, core.SUM); err != nil {
					return 0, err
				}
				return scal2.Float(0), nil
			}

			var zeta float64
			for it := 0; it < cfg.PowerIters; it++ {
				pL := make([]float64, rows)
				for i := 0; i < rows; i++ {
					zL[i] = 0
					rL[i] = x[lo+i]
					pL[i] = x[lo+i]
				}
				rhoLocal := dot(rL, rL)
				rho, err := sumScalar(rhoLocal)
				if err != nil {
					return err
				}
				for k := 0; k < cfg.CGIters; k++ {
					if err := allgatherRows(pL, pFull); err != nil {
						return err
					}
					m.matvecRows(lo, hi, pFull, qL)
					pq, err := sumScalar(dotSlice(pFull[lo:hi], qL))
					if err != nil {
						return err
					}
					alpha := rho / pq
					for i := 0; i < rows; i++ {
						zL[i] += alpha * pL[i]
						rL[i] -= alpha * qL[i]
					}
					rho2, err := sumScalar(dot(rL, rL))
					if err != nil {
						return err
					}
					beta := rho2 / rho
					rho = rho2
					for i := 0; i < rows; i++ {
						pL[i] = rL[i] + beta*pL[i]
					}
				}
				xz, err := sumScalar(dotSlice(x[lo:hi], zL))
				if err != nil {
					return err
				}
				zz, err := sumScalar(dot(zL, zL))
				if err != nil {
					return err
				}
				zeta = 1.0 / xz
				norm := math.Sqrt(zz)
				// x = z/||z||, re-replicated.
				for i := 0; i < rows; i++ {
					zL[i] /= norm
				}
				if err := allgatherRows(zL, x); err != nil {
					return err
				}
				for i := 0; i < rows; i++ {
					zL[i] *= norm // restore (not strictly needed)
				}
			}

			if me == 0 {
				verified := math.Abs(zeta-want) <= 1e-9*math.Abs(want)+1e-12
				out.fromRoot(Result{
					Verified: verified,
					Checksum: zeta,
					Detail: fmt.Sprintf("CG n=%d band=%d: zeta=%.12f (serial %.12f)",
						cfg.N, cfg.Band, zeta, want),
				})
			}
			return nil
		})
}

func dotSlice(a, b []float64) float64 { return dot(a, b) }
