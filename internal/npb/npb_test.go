package npb

import (
	"testing"

	"mv2j/internal/core"
)

func TestEPVerifies(t *testing.T) {
	for _, shape := range [][2]int{{1, 2}, {2, 2}, {2, 3}} {
		res, err := RunEP(EPConfig{LogPairs: 14, Nodes: shape[0], PPN: shape[1], Lib: "mvapich2"})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !res.Verified {
			t.Fatalf("%v: EP verification failed: %s", shape, res.Detail)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%v: no virtual time elapsed", shape)
		}
	}
}

func TestEPDeterministicAcrossShapes(t *testing.T) {
	// The tally is a property of the stream, not the decomposition.
	a, err := RunEP(EPConfig{LogPairs: 13, Nodes: 1, PPN: 2, Lib: "mvapich2"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEP(EPConfig{LogPairs: 13, Nodes: 2, PPN: 3, Lib: "mvapich2"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("EP checksum depends on decomposition: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestEPValidation(t *testing.T) {
	if _, err := RunEP(EPConfig{LogPairs: 2, Nodes: 1, PPN: 2, Lib: "mvapich2"}); err == nil {
		t.Fatal("tiny LogPairs accepted")
	}
	if _, err := RunEP(EPConfig{LogPairs: 14, Nodes: 0, PPN: 2, Lib: "mvapich2"}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestCGVerifies(t *testing.T) {
	for _, shape := range [][2]int{{1, 2}, {2, 2}} {
		res, err := RunCG(CGConfig{
			N: 256, Band: 4, PowerIters: 3, CGIters: 8,
			Nodes: shape[0], PPN: shape[1], Lib: "mvapich2",
		})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !res.Verified {
			t.Fatalf("%v: CG verification failed: %s", shape, res.Detail)
		}
	}
}

func TestCGBothLibraries(t *testing.T) {
	// The answer must not depend on the library profile — only the
	// virtual time may.
	mv2, err := RunCG(CGConfig{N: 128, Band: 3, PowerIters: 2, CGIters: 6, Nodes: 2, PPN: 2, Lib: "mvapich2"})
	if err != nil {
		t.Fatal(err)
	}
	ompi, err := RunCG(CGConfig{N: 128, Band: 3, PowerIters: 2, CGIters: 6, Nodes: 2, PPN: 2, Lib: "openmpi", Flavor: core.OpenMPIJ})
	if err != nil {
		t.Fatal(err)
	}
	if mv2.Checksum != ompi.Checksum {
		t.Fatalf("eigenvalue depends on the library: %v vs %v", mv2.Checksum, ompi.Checksum)
	}
	// At this tiny scale (2x2) the libraries are close — recursive
	// doubling needs fewer hops than the three-phase shm-aware
	// composition, so no ordering is asserted here; the 64-rank
	// ordering is covered by the figure tests.
	if mv2.Makespan <= 0 || ompi.Makespan <= 0 {
		t.Fatal("makespans must be positive")
	}
}

func TestCGValidation(t *testing.T) {
	if _, err := RunCG(CGConfig{N: 100, Band: 2, PowerIters: 1, CGIters: 2, Nodes: 2, PPN: 3, Lib: "mvapich2"}); err == nil {
		t.Fatal("non-divisible N accepted")
	}
}

func TestISVerifies(t *testing.T) {
	for _, shape := range [][2]int{{1, 2}, {2, 2}, {2, 3}} {
		res, err := RunIS(ISConfig{
			KeysPerRank: 2000, MaxKey: 1 << 16,
			Nodes: shape[0], PPN: shape[1], Lib: "mvapich2",
		})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !res.Verified {
			t.Fatalf("%v: IS verification failed: %s", shape, res.Detail)
		}
		if int(res.Checksum) != 2000*shape[0]*shape[1] {
			t.Fatalf("%v: key count %v", shape, res.Checksum)
		}
	}
}

func TestISValidation(t *testing.T) {
	if _, err := RunIS(ISConfig{KeysPerRank: 0, MaxKey: 10, Nodes: 1, PPN: 2, Lib: "mvapich2"}); err == nil {
		t.Fatal("zero keys accepted")
	}
	if _, err := RunIS(ISConfig{KeysPerRank: 10, MaxKey: 1, Nodes: 1, PPN: 2, Lib: "mvapich2"}); err == nil {
		t.Fatal("MaxKey 1 accepted")
	}
}

func TestLCGSkip(t *testing.T) {
	// skipTo(k) must agree with k sequential draws.
	g1 := newLCG(271828183)
	for i := 0; i < 1000; i++ {
		g1.next()
	}
	g2 := &lcg{}
	g2.skipTo(271828183, 1000)
	if g1.seed != g2.seed {
		t.Fatalf("skipTo diverges from sequential stream: %d vs %d", g1.seed, g2.seed)
	}
}
