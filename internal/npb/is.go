package npb

import (
	"fmt"
	"sort"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

// IS is the integer-sort kernel: each rank owns a shard of uniformly
// distributed keys; a bucket histogram is Allreduced to agree on
// bucket ownership, the keys move with Alltoallv, and each rank sorts
// its buckets locally. Verification checks global sortedness and key
// conservation — the kernel stresses the vectored collectives.
type ISConfig struct {
	// KeysPerRank is the shard size; MaxKey bounds key values.
	KeysPerRank int
	MaxKey      int
	Nodes, PPN  int
	Lib         string
	Flavor      core.Flavor
}

// isKeys deterministically generates rank me's shard.
func isKeys(me, n, maxKey int) []int32 {
	g := newLCG(314159265)
	g.skipTo(314159265, uint64(me*n))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(g.next() * float64(maxKey))
	}
	return out
}

// RunIS executes the distributed sort and verifies it.
func RunIS(cfg ISConfig) (Result, error) {
	if err := checkShape(cfg.Nodes, cfg.PPN); err != nil {
		return Result{}, err
	}
	if cfg.KeysPerRank <= 0 || cfg.MaxKey <= 1 {
		return Result{}, fmt.Errorf("npb: IS needs positive keys per rank and MaxKey > 1")
	}
	prof, _ := profile.ByName(cfg.Lib)

	return run(core.Config{Nodes: cfg.Nodes, PPN: cfg.PPN, Lib: prof, Flavor: cfg.Flavor},
		func(mpi *core.MPI, out *collector) error {
			world := mpi.CommWorld()
			np := world.Size()
			me := world.Rank()
			keys := isKeys(me, cfg.KeysPerRank, cfg.MaxKey)

			// Bucket b owns keys in [b*MaxKey/np, (b+1)*MaxKey/np).
			bucketOf := func(k int32) int {
				b := int(int64(k) * int64(np) / int64(cfg.MaxKey))
				if b >= np {
					b = np - 1
				}
				return b
			}

			// Partition local keys by destination bucket.
			sendCounts := make([]int, np)
			for _, k := range keys {
				sendCounts[bucketOf(k)]++
			}
			sendDispls := make([]int, np)
			total := 0
			for r := 0; r < np; r++ {
				sendDispls[r] = total
				total += sendCounts[r]
			}
			arranged := make([]int32, total)
			cursor := append([]int(nil), sendDispls...)
			for _, k := range keys {
				b := bucketOf(k)
				arranged[cursor[b]] = k
				cursor[b]++
			}

			// Exchange counts with Alltoall so each rank sizes its
			// receive side.
			cntSend := mpi.JVM().MustArray(jvm.Int, np)
			cntRecv := mpi.JVM().MustArray(jvm.Int, np)
			for r := 0; r < np; r++ {
				cntSend.SetInt(r, int64(sendCounts[r]))
			}
			if err := world.Alltoall(cntSend, 1, cntRecv, 1, core.INT); err != nil {
				return err
			}
			recvCounts := make([]int, np)
			recvDispls := make([]int, np)
			rTotal := 0
			for r := 0; r < np; r++ {
				recvCounts[r] = int(cntRecv.Int(r))
				recvDispls[r] = rTotal
				rTotal += recvCounts[r]
			}

			// Move the keys with Alltoallv over Java int arrays.
			sendArr := mpi.JVM().MustArray(jvm.Int, max(total, 1))
			for i, k := range arranged {
				sendArr.SetInt(i, int64(k))
			}
			recvArr := mpi.JVM().MustArray(jvm.Int, max(rTotal, 1))
			if err := world.Alltoallv(sendArr, sendCounts, sendDispls,
				recvArr, recvCounts, recvDispls, core.INT); err != nil {
				return err
			}

			// Local sort of the owned bucket range.
			mine := make([]int32, rTotal)
			for i := range mine {
				mine[i] = int32(recvArr.Int(i))
			}
			sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })

			// Verification: boundaries ordered across ranks (exchange
			// edge keys with neighbours), local keys in range, and the
			// global count conserved.
			okLocal := int64(1)
			loBound := int64(me) * int64(cfg.MaxKey) / int64(np)
			hiBound := int64(me+1) * int64(cfg.MaxKey) / int64(np)
			for i, k := range mine {
				if i > 0 && mine[i-1] > k {
					okLocal = 0
				}
				kk := int64(k)
				if kk < loBound || (kk >= hiBound && me != np-1) {
					okLocal = 0
				}
			}
			check := mpi.JVM().MustArray(jvm.Long, 2)
			checkOut := mpi.JVM().MustArray(jvm.Long, 2)
			check.SetInt(0, okLocal)
			check.SetInt(1, int64(rTotal))
			if err := world.Allreduce(check, checkOut, 2, core.LONG, core.BAND); err != nil {
				return err
			}
			// BAND of the ok flags; counts need SUM — do a second
			// reduction for the count.
			cnt := mpi.JVM().MustArray(jvm.Long, 1)
			cntOut := mpi.JVM().MustArray(jvm.Long, 1)
			cnt.SetInt(0, int64(rTotal))
			if err := world.Allreduce(cnt, cntOut, 1, core.LONG, core.SUM); err != nil {
				return err
			}

			if me == 0 {
				conserved := cntOut.Int(0) == int64(cfg.KeysPerRank*np)
				verified := checkOut.Int(0)&1 == 1 && conserved
				out.fromRoot(Result{
					Verified: verified,
					Checksum: float64(cntOut.Int(0)),
					Detail: fmt.Sprintf("IS %d keys x %d ranks, maxkey %d: sorted=%v conserved=%v",
						cfg.KeysPerRank, np, cfg.MaxKey, checkOut.Int(0)&1 == 1, conserved),
				})
			}
			return nil
		})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
