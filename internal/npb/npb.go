// Package npb implements three NAS Parallel Benchmark-style kernels —
// EP (embarrassingly parallel), CG (conjugate gradient), and IS
// (integer sort) — over the MVAPICH2-J bindings, in the spirit of the
// NPB-MPJ suite the paper cites as the Java HPC application benchmark.
// Each kernel is problem-size-parameterised, self-verifying against a
// serial reference, and returns the virtual makespan, so the kernels
// double as application-level benchmarks of the bindings.
package npb

import (
	"fmt"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/vtime"
)

// Result is a kernel run's outcome.
type Result struct {
	// Verified reports the built-in verification outcome.
	Verified bool
	// Makespan is the slowest rank's virtual time.
	Makespan vtime.Duration
	// Checksum is the kernel-specific verification value.
	Checksum float64
	// Detail carries a kernel-specific human-readable summary.
	Detail string
}

// collector gathers one Result from rank 0 plus the max clock across
// ranks.
type collector struct {
	mu   sync.Mutex
	res  Result
	tmax vtime.Time
}

func (c *collector) fromRoot(r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tmax := c.tmax
	c.res = r
	c.tmax = tmax
}

func (c *collector) clock(t vtime.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.tmax {
		c.tmax = t
	}
}

func (c *collector) result() Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.res
	r.Makespan = vtime.Duration(c.tmax)
	return r
}

// run wraps core.Run with result collection.
func run(cfg core.Config, body func(mpi *core.MPI, out *collector) error) (Result, error) {
	col := &collector{}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		if err := body(mpi, col); err != nil {
			return err
		}
		col.clock(mpi.Clock().Now())
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return col.result(), nil
}

// lcg is the NPB-style multiplicative congruential generator
// (a = 5^13) over 2^46, returning uniforms in (0,1).
type lcg struct{ seed uint64 }

const (
	lcgA    = 1220703125 // 5^13
	lcgMask = (1 << 46) - 1
)

func newLCG(seed uint64) *lcg { return &lcg{seed: seed & lcgMask} }

// next returns the next uniform double in (0,1).
func (g *lcg) next() float64 {
	g.seed = (g.seed * lcgA) & lcgMask
	return float64(g.seed) / float64(uint64(1)<<46)
}

// skipTo positions the stream at element k (O(log k) via modular
// exponentiation), so ranks can jump to disjoint substreams.
func (g *lcg) skipTo(seed uint64, k uint64) {
	a := uint64(lcgA)
	s := seed & lcgMask
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			s = (s * a) & lcgMask
		}
		a = (a * a) & lcgMask
	}
	g.seed = s
}

func checkShape(nodes, ppn int) error {
	if nodes <= 0 || ppn <= 0 {
		return fmt.Errorf("npb: invalid shape %dx%d", nodes, ppn)
	}
	return nil
}
