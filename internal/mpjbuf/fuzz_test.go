package mpjbuf

import (
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// FuzzIncomingMessage feeds arbitrary bytes to the receive-side parser
// (SetIncoming + GetSectionHeader/Read loop): corrupt wire data must
// produce errors, never panics or out-of-bounds access.
func FuzzIncomingMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 2, 0, 0, 0, 1, 2})                   // byte section, count 2
	f.Add([]byte{4, 0, 0, 0, 255, 255, 255, 255})                 // int section, absurd count
	f.Add([]byte{255, 1, 2, 3, 4, 5, 6, 7})                       // invalid kind
	f.Add([]byte{5, 0, 0, 0, 1, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}) // long section

	f.Fuzz(func(t *testing.T, wire []byte) {
		m := jvm.NewMachine(vtime.NewClock(), jvm.Options{HeapSize: 1 << 20, ArenaSize: 1 << 20})
		p := NewPool(m)
		b, err := p.Get(len(wire) + 1)
		if err != nil {
			t.Skip()
		}
		defer b.Free()
		copy(b.RawCapacity(), wire)
		if err := b.SetIncoming(len(wire)); err != nil {
			return
		}
		// Parse as a section stream until anything fails.
		for i := 0; i < 64; i++ {
			kind, count, err := b.GetSectionHeader()
			if err != nil {
				return // detected corruption: fine
			}
			if count < 0 {
				return // negative counts surface at Read below; bound them here
			}
			if count > 1<<16 {
				return
			}
			dst, err := m.NewArray(kind, count)
			if err != nil {
				return
			}
			if err := b.Read(dst, 0, count); err != nil {
				return
			}
			dst.Discard()
		}
	})
}

// FuzzRelFrameCodec exercises the reliability checksum/sequence header
// codec: an intact frame must round-trip exactly; a frame with
// arbitrary bytes corrupted must either be rejected or decode to the
// original content (detection never panics and never false-accepts).
func FuzzRelFrameCodec(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), uint16(0), uint64(0), uint16(0), uint8(0))
	f.Add([]byte{1, 2, 3}, uint8(1), uint8(0), uint16(2), uint64(77), uint16(5), uint8(0xa5))
	f.Add([]byte{9}, uint8(4), uint8(3), uint16(65535), uint64(1)<<63, uint16(19), uint8(1))

	f.Fuzz(func(t *testing.T, payload []byte, stream, kind uint8, attempt uint16, seq uint64, mutPos uint16, mutXor uint8) {
		if len(payload) > 1<<12 {
			t.Skip()
		}
		h := RelHeader{Stream: stream, Kind: kind, Attempt: attempt, Seq: seq}
		frame := EncodeRelFrame(h, payload)

		// Intact frames round-trip.
		gotH, gotP, err := DecodeRelFrame(frame)
		if err != nil {
			t.Fatalf("intact frame rejected: %v", err)
		}
		if gotH != h {
			t.Fatalf("header round trip: %+v != %+v", gotH, h)
		}
		if len(gotP) != len(payload) {
			t.Fatalf("payload length %d != %d", len(gotP), len(payload))
		}
		for i := range payload {
			if gotP[i] != payload[i] {
				t.Fatalf("payload round trip mismatch at %d", i)
			}
		}

		// Corrupt one byte anywhere in the frame: must be detected
		// (or, for a zero xor, be the identity and still decode).
		mut := make([]byte, len(frame))
		copy(mut, frame)
		pos := int(mutPos) % len(mut)
		mut[pos] ^= mutXor
		mh, mp, err := DecodeRelFrame(mut)
		if err != nil {
			return // detected: fine
		}
		if mh != h || len(mp) != len(payload) {
			t.Fatalf("corrupt frame false-accepted with different content: %+v", mh)
		}
		for i := range payload {
			if mp[i] != payload[i] {
				t.Fatalf("corrupt frame false-accepted with different payload at %d", i)
			}
		}

		// Truncations and garbage prefixes must error, never panic.
		for _, cut := range []int{0, 1, RelHeaderSize - 1, len(mut) - 1} {
			if cut < 0 || cut > len(mut) {
				continue
			}
			if _, _, err := DecodeRelFrame(mut[:cut]); err == nil && cut < RelHeaderSize {
				t.Fatalf("truncated frame of %d bytes accepted", cut)
			}
		}
	})
}

// FuzzWriteReadRoundTrip: arbitrary payload split points must
// round-trip exactly.
func FuzzWriteReadRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, splitRaw uint8) {
		if len(data) == 0 || len(data) > 1<<12 {
			t.Skip()
		}
		m := jvm.NewMachine(vtime.NewClock(), jvm.Options{HeapSize: 1 << 20, ArenaSize: 1 << 20})
		p := NewPool(m)
		src := m.MustArray(jvm.Byte, len(data))
		src.CopyInBytes(0, data)
		b, err := p.Get(len(data))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Free()
		split := int(splitRaw) % len(data)
		if err := b.Write(src, 0, split); err != nil {
			t.Fatal(err)
		}
		if err := b.Write(src, split, len(data)-split); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
		dst := m.MustArray(jvm.Byte, len(data))
		if err := b.Read(dst, 0, len(data)); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(data))
		dst.CopyOutBytes(0, out)
		for i := range data {
			if out[i] != data[i] {
				t.Fatalf("round trip mismatch at %d", i)
			}
		}
	})
}
