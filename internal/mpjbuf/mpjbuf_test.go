package mpjbuf

import (
	"errors"
	"testing"
	"testing/quick"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

func newPool(t testing.TB) (*Pool, *jvm.Machine) {
	t.Helper()
	m := jvm.NewMachine(vtime.NewClock(), jvm.Options{HeapSize: 8 << 20, ArenaSize: 8 << 20})
	return NewPool(m), m
}

func TestClassFor(t *testing.T) {
	cases := [][2]int{{1, 256}, {256, 256}, {257, 512}, {512, 512}, {1000, 1024}, {4096, 4096}, {4097, 8192}}
	for _, c := range cases {
		if got := classFor(c[0]); got != c[1] {
			t.Errorf("classFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPoolReuse(t *testing.T) {
	p, _ := newPool(t)
	b1, err := p.Get(1000)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Capacity() != 1024 {
		t.Fatalf("capacity %d, want 1024", b1.Capacity())
	}
	b1.Free()
	b2, err := p.Get(900) // same class: must reuse the parked storage
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Free()
	s := p.Stats()
	if s.Gets != 2 || s.Hits != 1 || s.Misses != 1 || s.Allocated != 1 {
		t.Fatalf("pool stats %+v: want one hit, one miss, one allocation", s)
	}
}

func TestPoolAvoidsAllocateDirectCost(t *testing.T) {
	clock := vtime.NewClock()
	m := jvm.NewMachine(clock, jvm.Options{HeapSize: 8 << 20, ArenaSize: 8 << 20})
	p := NewPool(m)
	// Warm the class.
	b, err := p.Get(4096)
	if err != nil {
		t.Fatal(err)
	}
	b.Free()
	t0 := clock.Now()
	b2, err := p.Get(4096)
	if err != nil {
		t.Fatal(err)
	}
	hit := clock.Now().Sub(t0)
	b2.Free()
	if hit >= m.Costs().AllocDirect {
		t.Fatalf("pool hit cost %v should be far below AllocateDirect %v", hit, m.Costs().AllocDirect)
	}
}

func TestUnpooledAlwaysAllocates(t *testing.T) {
	_, m := newPool(t)
	p := NewUnpooled(m)
	b1, _ := p.Get(512)
	b1.Free()
	b2, _ := p.Get(512)
	b2.Free()
	s := p.Stats()
	if s.Hits != 0 || s.Allocated != 2 {
		t.Fatalf("unpooled stats %+v: expected no hits", s)
	}
	if m.DirectUsed() != 0 {
		t.Fatalf("unpooled Free must release storage, %d bytes held", m.DirectUsed())
	}
}

func TestGetInvalidSize(t *testing.T) {
	p, _ := newPool(t)
	if _, err := p.Get(0); err == nil {
		t.Fatal("Get(0) must fail")
	}
	if _, err := p.Get(-1); err == nil {
		t.Fatal("Get(-1) must fail")
	}
}

func TestRawModeRoundTrip(t *testing.T) {
	p, m := newPool(t)
	src := m.MustArray(jvm.Int, 10)
	for i := 0; i < 10; i++ {
		src.SetInt(i, int64(i*i))
	}
	b, err := p.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	if err := b.Write(src, 2, 5); err != nil { // elements 2..6
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(b.Raw()) != 20 {
		t.Fatalf("raw payload %d bytes, want 20", len(b.Raw()))
	}
	dst := m.MustArray(jvm.Int, 10)
	if err := b.Read(dst, 0, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dst.Int(i) != int64((i+2)*(i+2)) {
			t.Fatalf("dst[%d] = %d", i, dst.Int(i))
		}
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	p, m := newPool(t)
	ints := m.MustArray(jvm.Int, 4)
	doubles := m.MustArray(jvm.Double, 3)
	for i := 0; i < 4; i++ {
		ints.SetInt(i, int64(i+1))
	}
	for i := 0; i < 3; i++ {
		doubles.SetFloat(i, float64(i)+0.5)
	}
	b, err := p.Get(256)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	if err := b.PutSectionHeader(jvm.Int); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ints, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.PutSectionHeader(jvm.Double); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(doubles, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	kind, count, err := b.GetSectionHeader()
	if err != nil || kind != jvm.Int || count != 4 {
		t.Fatalf("section 1 header: %v %d %v", kind, count, err)
	}
	outI := m.MustArray(jvm.Int, 4)
	if err := b.Read(outI, 0, count); err != nil {
		t.Fatal(err)
	}
	kind, count, err = b.GetSectionHeader()
	if err != nil || kind != jvm.Double || count != 3 {
		t.Fatalf("section 2 header: %v %d %v", kind, count, err)
	}
	outD := m.MustArray(jvm.Double, 3)
	if err := b.Read(outD, 0, count); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if outI.Int(i) != int64(i+1) {
			t.Fatalf("ints[%d] = %d", i, outI.Int(i))
		}
	}
	for i := 0; i < 3; i++ {
		if outD.Float(i) != float64(i)+0.5 {
			t.Fatalf("doubles[%d] = %v", i, outD.Float(i))
		}
	}
}

func TestSectionTypeMismatch(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(256)
	defer b.Free()
	if err := b.PutSectionHeader(jvm.Int); err != nil {
		t.Fatal(err)
	}
	arr := m.MustArray(jvm.Double, 2)
	if err := b.Write(arr, 0, 2); !errors.Is(err, ErrSectionType) {
		t.Fatalf("err = %v, want ErrSectionType", err)
	}
}

func TestSectionSizeSplitting(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(1024)
	defer b.Free()
	b.SetSectionSize(3)
	arr := m.MustArray(jvm.Short, 8)
	for i := 0; i < 8; i++ {
		arr.SetInt(i, int64(10+i))
	}
	if err := b.PutSectionHeader(jvm.Short); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(arr, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Expect sections of 3, 3, 2 elements.
	var counts []int
	total := 0
	out := m.MustArray(jvm.Short, 8)
	for total < 8 {
		kind, count, err := b.GetSectionHeader()
		if err != nil {
			t.Fatal(err)
		}
		if kind != jvm.Short {
			t.Fatalf("kind = %v", kind)
		}
		if err := b.Read(out, total, count); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, count)
		total += count
	}
	if len(counts) != 3 || counts[0] != 3 || counts[1] != 3 || counts[2] != 2 {
		t.Fatalf("section counts = %v, want [3 3 2]", counts)
	}
	for i := 0; i < 8; i++ {
		if out.Int(i) != int64(10+i) {
			t.Fatalf("out[%d] = %d", i, out.Int(i))
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	p, m := newPool(t)
	arr := m.MustArray(jvm.Byte, 4)
	b, _ := p.Get(64)

	// Read before commit.
	if err := b.Read(arr, 0, 1); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("read before commit: %v", err)
	}
	if _, _, err := b.GetSectionHeader(); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("header before commit: %v", err)
	}
	// Write after commit.
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(arr, 0, 1); err == nil {
		t.Fatal("write after commit must fail")
	}
	// Clear re-enables writing.
	if err := b.Clear(); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(arr, 0, 4); err != nil {
		t.Fatal(err)
	}
	// Everything fails after Free.
	b.Free()
	if err := b.Write(arr, 0, 1); !errors.Is(err, ErrFreed) {
		t.Fatalf("write after free: %v", err)
	}
	if err := b.Commit(); !errors.Is(err, ErrFreed) {
		t.Fatalf("commit after free: %v", err)
	}
	if err := b.Clear(); !errors.Is(err, ErrFreed) {
		t.Fatalf("clear after free: %v", err)
	}
	b.Free() // double free is a no-op
}

func TestOverflow(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(256) // min class
	defer b.Free()
	arr := m.MustArray(jvm.Long, 64) // 512 bytes
	if err := b.Write(arr, 0, 64); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("overflow write: %v, want ErrShortBuffer", err)
	}
}

func TestSetIncoming(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(64)
	defer b.Free()
	// Simulate the native layer landing 8 wire bytes.
	copy(b.RawCapacity(), []byte{1, 0, 0, 0, 2, 0, 0, 0})
	if err := b.SetIncoming(8); err != nil {
		t.Fatal(err)
	}
	dst := m.MustArray(jvm.Int, 2)
	if err := b.Read(dst, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Bulk array transfers are raw native-layout copies (little-endian
	// element storage), so {1,0,0,0} decodes as 1.
	if dst.Int(0) != 1 || dst.Int(1) != 2 {
		t.Fatalf("incoming decode: %d %d", dst.Int(0), dst.Int(1))
	}
	if err := b.SetIncoming(b.Capacity() + 1); err == nil {
		t.Fatal("SetIncoming beyond capacity must fail")
	}
}

func TestEncodingConfig(t *testing.T) {
	p, _ := newPool(t)
	b, _ := p.Get(64)
	defer b.Free()
	if b.Encoding() != jvm.BigEndian {
		t.Fatal("default encoding must be big-endian")
	}
	b.SetEncoding(jvm.LittleEndian)
	if b.Encoding() != jvm.LittleEndian {
		t.Fatal("SetEncoding did not stick")
	}
}

func TestDrain(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(512)
	b.Free()
	if p.Stats().HeldBytes == 0 {
		t.Fatal("free list should hold the parked buffer")
	}
	p.Drain()
	if p.Stats().HeldBytes != 0 || m.DirectUsed() != 0 {
		t.Fatalf("Drain left held=%d direct=%d", p.Stats().HeldBytes, m.DirectUsed())
	}
}

// Property: write/read round-trips arbitrary byte payloads through the
// buffering layer, for any split of the writes.
func TestWriteReadProperty(t *testing.T) {
	p, m := newPool(t)
	f := func(data []byte, split uint8) bool {
		if len(data) == 0 {
			return true
		}
		src := m.MustArray(jvm.Byte, len(data))
		src.CopyInBytes(0, data)
		b, err := p.Get(len(data))
		if err != nil {
			return false
		}
		defer b.Free()
		k := int(split)%len(data) + 0
		if err := b.Write(src, 0, k); err != nil {
			return false
		}
		if err := b.Write(src, k, len(data)-k); err != nil {
			return false
		}
		if err := b.Commit(); err != nil {
			return false
		}
		dst := m.MustArray(jvm.Byte, len(data))
		if err := b.Read(dst, 0, len(data)); err != nil {
			return false
		}
		out := make([]byte, len(data))
		dst.CopyOutBytes(0, out)
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		src.Discard()
		dst.Discard()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
