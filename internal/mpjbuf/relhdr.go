package mpjbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Reliability wire framing. When a fault plan is active, every packet
// the simulated native library injects is wrapped in a small header
// carrying a stream id, a sequence number, the transmission attempt,
// and a CRC32-C checksum over the whole frame — the codec the
// nativempi reliability sublayer uses to detect corruption and
// suppress retransmitted duplicates. It lives in mpjbuf with the other
// wire-format code (the section codec of the buffering layer).
//
// Frame layout (little-endian):
//
//	offset  size  field
//	0       2     magic 0x524C ("RL")
//	2       1     version (1)
//	3       1     stream id
//	4       1     packet kind
//	5       1     reserved (0)
//	6       2     attempt
//	8       8     sequence number
//	16      4     payload length
//	20      4     CRC32-C over the frame with this field zeroed
//	24      ...   payload
const (
	relMagic      = 0x524C
	relVersion    = 1
	RelHeaderSize = 24
)

var relTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by DecodeRelFrame. ErrRelCorrupt wraps every
// integrity failure so callers can treat "short", "bad magic" and
// "bad checksum" uniformly as wire corruption.
var (
	ErrRelCorrupt = errors.New("mpjbuf: corrupt reliability frame")
)

// RelHeader is the decoded reliability header.
type RelHeader struct {
	Stream  uint8
	Kind    uint8
	Attempt uint16
	Seq     uint64
}

// EncodeRelFrame builds the wire image of one transmission: header
// plus payload, checksummed. The payload is copied; mutating the
// returned frame (fault injection) does not touch the caller's buffer.
func EncodeRelFrame(h RelHeader, payload []byte) []byte {
	frame := make([]byte, RelHeaderSize+len(payload))
	binary.LittleEndian.PutUint16(frame[0:], relMagic)
	frame[2] = relVersion
	frame[3] = h.Stream
	frame[4] = h.Kind
	binary.LittleEndian.PutUint16(frame[6:], h.Attempt)
	binary.LittleEndian.PutUint64(frame[8:], h.Seq)
	binary.LittleEndian.PutUint32(frame[16:], uint32(len(payload)))
	copy(frame[RelHeaderSize:], payload)
	binary.LittleEndian.PutUint32(frame[20:], crc32.Checksum(frame, relTable))
	return frame
}

// DecodeRelFrame validates and decodes a wire image. Corruption of any
// byte — header or payload — is detected through the length and
// checksum fields and reported as an error wrapping ErrRelCorrupt;
// arbitrary input never panics. The returned payload aliases frame.
func DecodeRelFrame(frame []byte) (RelHeader, []byte, error) {
	if len(frame) < RelHeaderSize {
		return RelHeader{}, nil, fmt.Errorf("%w: %d-byte frame shorter than header", ErrRelCorrupt, len(frame))
	}
	if binary.LittleEndian.Uint16(frame[0:]) != relMagic {
		return RelHeader{}, nil, fmt.Errorf("%w: bad magic %#x", ErrRelCorrupt, binary.LittleEndian.Uint16(frame[0:]))
	}
	if frame[2] != relVersion {
		return RelHeader{}, nil, fmt.Errorf("%w: version %d", ErrRelCorrupt, frame[2])
	}
	if frame[5] != 0 {
		return RelHeader{}, nil, fmt.Errorf("%w: reserved byte %#x", ErrRelCorrupt, frame[5])
	}
	n := binary.LittleEndian.Uint32(frame[16:])
	if uint64(n) != uint64(len(frame)-RelHeaderSize) {
		return RelHeader{}, nil, fmt.Errorf("%w: payload length %d in a %d-byte frame", ErrRelCorrupt, n, len(frame))
	}
	want := binary.LittleEndian.Uint32(frame[20:])
	// Recompute with the checksum field zeroed, without mutating the
	// (possibly shared) frame.
	sum := crc32.Checksum(frame[:20], relTable)
	sum = crc32.Update(sum, relTable, []byte{0, 0, 0, 0})
	sum = crc32.Update(sum, relTable, frame[24:])
	if sum != want {
		return RelHeader{}, nil, fmt.Errorf("%w: checksum %#x != %#x", ErrRelCorrupt, sum, want)
	}
	h := RelHeader{
		Stream:  frame[3],
		Kind:    frame[4],
		Attempt: binary.LittleEndian.Uint16(frame[6:]),
		Seq:     binary.LittleEndian.Uint64(frame[8:]),
	}
	return h, frame[RelHeaderSize:], nil
}
