package mpjbuf

import (
	"errors"
	"fmt"

	"mv2j/internal/jvm"
)

// Errors reported by the buffering layer.
var (
	ErrFreed        = errors.New("mpjbuf: buffer already freed")
	ErrNotCommitted = errors.New("mpjbuf: read before commit")
	ErrSectionType  = errors.New("mpjbuf: section type mismatch")
	ErrShortBuffer  = errors.New("mpjbuf: message exceeds buffer capacity")
)

// headerBytes is the encoded size of a section header:
// [kind:1][flags:1][reserved:2][count:4].
const headerBytes = 8

// Buffer is the mpjbuf.Buffer of Listing 1: a staging area backed by a
// pooled direct ByteBuffer. Data from one or more Java arrays is
// written into it (each group optionally preceded by a section
// header), the buffer is committed, its raw storage is handed to the
// native library, and the receiver reads arrays back out.
//
// A Buffer without sections carries raw elements only, which keeps the
// wire format identical to a direct-ByteBuffer send — arrays and
// buffers interoperate on the two ends of one message.
type Buffer struct {
	pool *Pool
	bb   *jvm.ByteBuffer

	freed       bool
	committed   bool
	sectionOpen bool
	sectionHdr  int // header offset of the open section
	sectionEls  int // elements written into the open section
	sectionSize int // soft cap on elements per section (0 = unlimited)
}

func newBuffer(p *Pool, bb *jvm.ByteBuffer) *Buffer {
	return &Buffer{pool: p, bb: bb}
}

// Capacity returns the byte capacity of the backing direct buffer.
func (b *Buffer) Capacity() int { return b.bb.Capacity() }

// SetEncoding selects the byte order used for section headers and
// per-element accessors. Bulk array payloads are always raw
// native-layout copies: on a homogeneous cluster the two ends agree,
// and this keeps an array message byte-identical to a direct-buffer
// message.
func (b *Buffer) SetEncoding(o jvm.ByteOrder) { b.bb.SetOrder(o) }

// Encoding returns the byte order in effect.
func (b *Buffer) Encoding() jvm.ByteOrder { return b.bb.Order() }

// SetSectionSize caps the number of elements per section; Write starts
// a fresh section (same kind) when the cap is exceeded. Zero disables
// the cap.
func (b *Buffer) SetSectionSize(n int) {
	if n < 0 {
		panic(fmt.Sprintf("mpjbuf: negative section size %d", n))
	}
	b.sectionSize = n
}

// SectionSize returns the element cap per section.
func (b *Buffer) SectionSize() int { return b.sectionSize }

func (b *Buffer) ensureWritable() error {
	if b.freed {
		return ErrFreed
	}
	if b.committed {
		return errors.New("mpjbuf: write after commit (Clear first)")
	}
	return nil
}

// PutSectionHeader closes the open section, if any, and starts a new
// section of the given kind. The element count is patched into the
// header when the section closes.
func (b *Buffer) PutSectionHeader(k jvm.Kind) error {
	if err := b.ensureWritable(); err != nil {
		return err
	}
	b.closeSection()
	if b.bb.Remaining() < headerBytes {
		return fmt.Errorf("%w: no room for section header", ErrShortBuffer)
	}
	b.sectionHdr = b.bb.Position()
	b.sectionOpen = true
	b.sectionEls = 0
	b.bb.PutIntKindAt(jvm.Byte, b.sectionHdr, int64(k))
	b.bb.SetPosition(b.sectionHdr + headerBytes)
	return nil
}

func (b *Buffer) closeSection() {
	if !b.sectionOpen {
		return
	}
	b.bb.PutIntKindAt(jvm.Int, b.sectionHdr+4, int64(b.sectionEls))
	b.sectionOpen = false
}

// Write appends numEls elements of source, starting at srcOff, to the
// buffer — the Listing-1 write(type[] source, int srcOff, int numEls).
// The copy is a single bulk transfer (this staging copy is step 2 of
// the paper's Fig. 3). Inside a section, the section's kind must match
// the array's.
func (b *Buffer) Write(source jvm.Array, srcOff, numEls int) error {
	if err := b.ensureWritable(); err != nil {
		return err
	}
	if numEls < 0 {
		return fmt.Errorf("mpjbuf: negative element count %d", numEls)
	}
	if b.sectionOpen {
		if kind := jvm.Kind(b.bb.IntKindAt(jvm.Byte, b.sectionHdr)); kind != source.Kind() {
			return fmt.Errorf("%w: section is %v, array is %v", ErrSectionType, kind, source.Kind())
		}
		if b.sectionSize > 0 && b.sectionEls+numEls > b.sectionSize {
			// Split across sections of the same kind.
			room := b.sectionSize - b.sectionEls
			if room > 0 {
				if err := b.writeRaw(source, srcOff, room); err != nil {
					return err
				}
				b.sectionEls += room
				srcOff += room
				numEls -= room
			}
			if err := b.PutSectionHeader(source.Kind()); err != nil {
				return err
			}
			return b.Write(source, srcOff, numEls)
		}
	}
	if err := b.writeRaw(source, srcOff, numEls); err != nil {
		return err
	}
	if b.sectionOpen {
		b.sectionEls += numEls
	}
	return nil
}

func (b *Buffer) writeRaw(source jvm.Array, srcOff, numEls int) error {
	nb := numEls * source.Kind().Size()
	if b.bb.Remaining() < nb {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrShortBuffer, nb, b.bb.Remaining())
	}
	b.bb.PutArray(source, srcOff, numEls)
	return nil
}

// Commit closes the open section and flips the buffer for reading /
// transmission. After Commit, Raw covers exactly the message payload.
func (b *Buffer) Commit() error {
	if b.freed {
		return ErrFreed
	}
	if b.committed {
		return nil
	}
	b.closeSection()
	b.bb.Flip()
	b.committed = true
	return nil
}

// GetSectionHeader consumes a section header at the read position and
// returns its kind and element count.
func (b *Buffer) GetSectionHeader() (jvm.Kind, int, error) {
	if b.freed {
		return 0, 0, ErrFreed
	}
	if !b.committed {
		return 0, 0, ErrNotCommitted
	}
	if b.bb.Remaining() < headerBytes {
		return 0, 0, fmt.Errorf("mpjbuf: truncated section header (%d bytes left)", b.bb.Remaining())
	}
	pos := b.bb.Position()
	kind := jvm.Kind(b.bb.IntKindAt(jvm.Byte, pos))
	count := int(b.bb.IntKindAt(jvm.Int, pos+4))
	if kind < 0 || int(kind) >= len(jvm.Kinds()) {
		return 0, 0, fmt.Errorf("mpjbuf: corrupt section kind %d", int(kind))
	}
	b.bb.SetPosition(pos + headerBytes)
	return kind, count, nil
}

// Read copies numEls elements from the read position into dest at
// dstOff — the Listing-1 read(type[] dest, int dstOff, int numEls).
func (b *Buffer) Read(dest jvm.Array, dstOff, numEls int) error {
	if b.freed {
		return ErrFreed
	}
	if !b.committed {
		return ErrNotCommitted
	}
	nb := numEls * dest.Kind().Size()
	if b.bb.Remaining() < nb {
		return fmt.Errorf("mpjbuf: short read: need %d bytes, have %d", nb, b.bb.Remaining())
	}
	b.bb.GetArray(dest, dstOff, numEls)
	return nil
}

// Raw exposes the committed payload bytes (stable storage: the backing
// buffer is direct). The native layer transmits or fills exactly this
// region. Before Commit it covers the written prefix.
func (b *Buffer) Raw() []byte {
	if b.committed {
		return b.bb.RawBytes()[:b.bb.Limit()]
	}
	return b.bb.RawBytes()[:b.bb.Position()]
}

// RawCapacity exposes the full backing storage, for receives that land
// network bytes into the buffer before SetIncoming.
func (b *Buffer) RawCapacity() []byte { return b.bb.RawBytes() }

// SetIncoming marks n bytes of the backing storage as a received,
// committed message ready for Read/GetSectionHeader.
func (b *Buffer) SetIncoming(n int) error {
	if b.freed {
		return ErrFreed
	}
	if n < 0 || n > b.bb.Capacity() {
		return fmt.Errorf("mpjbuf: incoming length %d outside [0,%d]", n, b.bb.Capacity())
	}
	b.bb.Clear()
	b.bb.SetLimit(n)
	b.committed = true
	b.sectionOpen = false
	return nil
}

// Clear resets the buffer for writing a fresh message, keeping the
// storage.
func (b *Buffer) Clear() error {
	if b.freed {
		return ErrFreed
	}
	b.bb.Clear()
	b.committed = false
	b.sectionOpen = false
	b.sectionEls = 0
	return nil
}

// Free returns the storage to the pool. The Buffer is dead afterwards.
func (b *Buffer) Free() {
	if b.freed {
		return
	}
	b.freed = true
	b.pool.put(b.bb)
	b.bb = nil
}
