package mpjbuf

import (
	"errors"
	"strings"
	"testing"

	"mv2j/internal/jvm"
)

func TestCorruptSectionHeaderDetected(t *testing.T) {
	p, _ := newPool(t)
	b, err := p.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	// Land garbage as an incoming message: kind byte 0xFF is invalid.
	raw := b.RawCapacity()
	raw[0] = 0xFF
	if err := b.SetIncoming(16); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.GetSectionHeader(); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt kind accepted: %v", err)
	}
}

func TestTruncatedSectionHeaderDetected(t *testing.T) {
	p, _ := newPool(t)
	b, err := p.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	if err := b.SetIncoming(4); err != nil { // shorter than a header
		t.Fatal(err)
	}
	if _, _, err := b.GetSectionHeader(); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestShortReadDetected(t *testing.T) {
	p, m := newPool(t)
	b, err := p.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	arr := m.MustArray(jvm.Int, 2)
	if err := b.Write(arr, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	big := m.MustArray(jvm.Int, 16)
	if err := b.Read(big, 0, 16); err == nil {
		t.Fatal("read past the payload accepted")
	}
}

func TestWriteNegativeCount(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(64)
	defer b.Free()
	arr := m.MustArray(jvm.Int, 2)
	if err := b.Write(arr, 0, -1); err == nil {
		t.Fatal("negative element count accepted")
	}
}

func TestSectionHeaderNoRoom(t *testing.T) {
	p, m := newPool(t)
	b, _ := p.Get(256) // min class
	defer b.Free()
	arr := m.MustArray(jvm.Byte, 252)
	if err := b.Write(arr, 0, 252); err != nil {
		t.Fatal(err)
	}
	if err := b.PutSectionHeader(jvm.Int); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("header into 4 remaining bytes: %v", err)
	}
}

func TestNegativeSectionSizePanics(t *testing.T) {
	p, _ := newPool(t)
	b, _ := p.Get(64)
	defer b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("negative section size did not panic")
		}
	}()
	b.SetSectionSize(-1)
}
