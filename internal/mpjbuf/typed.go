package mpjbuf

import "mv2j/internal/jvm"

// Typed pack engine: the buffering layer's entry point for derived
// (non-contiguous) datatypes. The bindings flatten a committed type
// into coalesced element runs once; pack and unpack then stream each
// run as one bulk transfer through the pooled staging buffer — the
// copy-in/copy-out charges of the established staging model, paid per
// run instead of per element.

// Run is one contiguous element extent of a typed message layout,
// relative to the message base, in array elements.
type Run struct {
	Off int // element offset from the message base
	Els int // elements in the run
}

// WriteRuns packs the runs of one datatype element rooted at elemBase
// into the buffer, each run as one bulk array read (PutArray) — one
// bulk charge per run, never per element.
func (b *Buffer) WriteRuns(source jvm.Array, elemBase int, runs []Run) error {
	for _, r := range runs {
		if err := b.Write(source, elemBase+r.Off, r.Els); err != nil {
			return err
		}
	}
	return nil
}

// ReadRuns unpacks one datatype element rooted at elemBase out of the
// buffer, scattering each run as one bulk array write (GetArray).
func (b *Buffer) ReadRuns(dest jvm.Array, elemBase int, runs []Run) error {
	for _, r := range runs {
		if err := b.Read(dest, elemBase+r.Off, r.Els); err != nil {
			return err
		}
	}
	return nil
}
