// Package mpjbuf implements the buffering layer of MVAPICH2-J
// (paper §IV-A), inspired by MPJ Express: a dynamically maintained pool
// of direct ByteBuffers used as bounce buffers when communicating Java
// arrays, so that a direct buffer is not created — an expensive
// operation — every time an array message is sent.
//
// A Buffer wraps one pooled direct ByteBuffer and offers the Listing-1
// interface: typed write/read against Java arrays, section headers for
// multi-array (derived-datatype) messages, configurable encoding, and
// commit/clear/free lifecycle.
package mpjbuf

import (
	"fmt"
	"math/bits"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// minClass is the smallest pooled buffer size. Requests below it are
// rounded up; tiny MPI messages dominate latency benchmarks and should
// all hit one class.
const minClass = 256

// Pool bookkeeping costs: a hit still pays free-list pop plus buffer
// state reset, and Free pays the park. These fixed costs (together
// with the two staging copies) are the array path's small-message
// penalty — and what direct-buffer users avoid.
const (
	getCost  = 165 * vtime.Nanosecond
	freeCost = 80 * vtime.Nanosecond
)

// PoolStats counts pool activity.
type PoolStats struct {
	Gets      int64
	Hits      int64
	Misses    int64
	Frees     int64
	Allocated int64 // direct buffers created
	HeldBytes int64 // bytes parked in free lists
	// InUseBytes is the capacity currently lent out to live Buffers;
	// HighWaterBytes is its maximum over the pool's lifetime — the
	// staging footprint a window of in-flight array messages pins.
	InUseBytes     int64
	HighWaterBytes int64
}

// Pool is a per-rank pool of direct ByteBuffers in power-of-two size
// classes. It is goroutine-confined, like everything owned by a rank.
type Pool struct {
	m       *jvm.Machine
	classes map[int][]*jvm.ByteBuffer
	stats   PoolStats
	// disabled turns the pool into a pass-through that allocates and
	// frees a direct buffer per message — the behaviour the layer
	// exists to avoid, kept for the ablation benchmark.
	disabled bool
	// maxHeldPerClass bounds parked buffers per class; beyond it,
	// freed buffers are truly released.
	maxHeldPerClass int
}

// NewPool creates a pool over machine m.
func NewPool(m *jvm.Machine) *Pool {
	if m == nil {
		panic("mpjbuf: nil machine")
	}
	return &Pool{m: m, classes: map[int][]*jvm.ByteBuffer{}, maxHeldPerClass: 16}
}

// NewUnpooled creates a pass-through "pool" that allocates a fresh
// direct buffer per Get and destroys it on Free. Used by the ablation
// benchmarks to quantify what the buffering layer saves.
func NewUnpooled(m *jvm.Machine) *Pool {
	p := NewPool(m)
	p.disabled = true
	return p
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// classFor rounds n up to the pooled size class.
func classFor(n int) int {
	if n <= minClass {
		return minClass
	}
	return 1 << bits.Len(uint(n-1))
}

// Get returns a Buffer whose capacity is at least n bytes.
func (p *Pool) Get(n int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpjbuf: invalid buffer request %d", n)
	}
	p.stats.Gets++
	p.m.Charge(getCost)
	cls := classFor(n)
	p.stats.InUseBytes += int64(cls)
	if p.stats.InUseBytes > p.stats.HighWaterBytes {
		p.stats.HighWaterBytes = p.stats.InUseBytes
	}
	if !p.disabled {
		if free := p.classes[cls]; len(free) > 0 {
			bb := free[len(free)-1]
			p.classes[cls] = free[:len(free)-1]
			p.stats.Hits++
			p.stats.HeldBytes -= int64(cls)
			bb.Clear()
			return newBuffer(p, bb), nil
		}
	}
	p.stats.Misses++
	bb, err := p.m.AllocateDirect(cls)
	if err != nil {
		return nil, err
	}
	p.stats.Allocated++
	return newBuffer(p, bb), nil
}

// put parks (or destroys) a buffer's storage on Free.
func (p *Pool) put(bb *jvm.ByteBuffer) {
	p.stats.Frees++
	p.m.Charge(freeCost)
	cls := bb.Capacity()
	p.stats.InUseBytes -= int64(cls)
	if p.disabled || len(p.classes[cls]) >= p.maxHeldPerClass {
		bb.Free()
		return
	}
	p.classes[cls] = append(p.classes[cls], bb)
	p.stats.HeldBytes += int64(cls)
}

// Drain releases every parked buffer back to the arena.
func (p *Pool) Drain() {
	for cls, free := range p.classes {
		for _, bb := range free {
			bb.Free()
		}
		p.stats.HeldBytes -= int64(cls) * int64(len(free))
		delete(p.classes, cls)
	}
}
