// Package fabric models the communication channels of the simulated
// cluster with a LogGP-style cost structure: a one-way latency α, a
// per-byte cost β = 1/bandwidth, and per-message CPU overheads o_s/o_r
// at the sender and receiver. Two channel classes exist, matching what
// the paper's evaluation distinguishes: intra-node shared memory and an
// inter-node InfiniBand-like network (TACC Frontera hosts HDR
// InfiniBand; its per-link large-message bandwidth is ~12.5 GB/s and
// native small-message latency is ~1 µs).
//
// The fabric is pure cost model: it computes durations. Actual data
// movement and message ordering live in internal/nativempi.
package fabric

import (
	"fmt"

	"mv2j/internal/cluster"
	"mv2j/internal/faults"
	"mv2j/internal/vtime"
)

// Params describes one channel class.
type Params struct {
	// Name labels the channel in traces ("shm", "ib").
	Name string
	// Latency is the one-way wire/transport latency α.
	Latency vtime.Duration
	// Bandwidth is the sustained per-link rate in bytes/second (1/β).
	Bandwidth float64
	// SendOverhead is CPU time charged at the sender per message (o_s).
	SendOverhead vtime.Duration
	// RecvOverhead is CPU time charged at the receiver per message (o_r).
	RecvOverhead vtime.Duration
	// EagerThreshold is the message size (bytes) at or below which the
	// eager protocol is used; larger messages use rendezvous. Library
	// profiles may override it.
	EagerThreshold int
	// RndvHandshake is the extra cost of the RTS/CTS exchange that the
	// rendezvous protocol pays before moving payload.
	RndvHandshake vtime.Duration
	// RDMAFinOverhead is the receiver-side completion cost of an
	// RDMA-placed rendezvous payload: detecting the completion event and
	// retiring the request. It replaces RecvOverhead plus the library's
	// software receive overhead on the RDMA path — the one-sided
	// placement bypasses the receiver's protocol stack, which is where
	// the large-message win comes from (Liu et al., MPICH2 over
	// InfiniBand with RDMA support).
	RDMAFinOverhead vtime.Duration
}

// TransferTime returns the wire time for an n-byte payload on this
// channel: α + n·β. CPU overheads are charged separately by the
// runtime so that overlap (non-blocking operations) is modeled
// correctly.
func (p Params) TransferTime(n int) vtime.Duration {
	return p.Latency + vtime.PerByte(n, p.Bandwidth)
}

// SerializeTime returns the time the sender's injection resource (NIC
// or memory port) is busy with an n-byte payload: n·β. Successive
// messages from one rank serialize on this resource, which is what
// caps the bandwidth benchmark at the link rate.
func (p Params) SerializeTime(n int) vtime.Duration {
	return vtime.PerByte(n, p.Bandwidth)
}

// Validate reports a descriptive error for nonsensical parameters.
func (p Params) Validate() error {
	if p.Latency < 0 {
		return fmt.Errorf("fabric %q: negative latency %v", p.Name, p.Latency)
	}
	if p.Bandwidth <= 0 {
		return fmt.Errorf("fabric %q: non-positive bandwidth %g", p.Name, p.Bandwidth)
	}
	if p.SendOverhead < 0 || p.RecvOverhead < 0 {
		return fmt.Errorf("fabric %q: negative overhead", p.Name)
	}
	if p.EagerThreshold < 0 {
		return fmt.Errorf("fabric %q: negative eager threshold %d", p.Name, p.EagerThreshold)
	}
	return nil
}

// FronteraShm returns the intra-node shared-memory channel parameters,
// calibrated so that native intra-node small-message latency lands in
// the few-hundred-nanosecond range real CLX nodes show.
func FronteraShm() Params {
	return Params{
		Name:            "shm",
		Latency:         vtime.Nanos(120),
		Bandwidth:       16e9, // ~16 GB/s effective per-pair copy bandwidth
		SendOverhead:    vtime.Nanos(60),
		RecvOverhead:    vtime.Nanos(60),
		EagerThreshold:  8192,
		RndvHandshake:   vtime.Nanos(250),
		RDMAFinOverhead: vtime.Nanos(40),
	}
}

// FronteraIB returns the inter-node InfiniBand channel parameters
// (HDR-class link): ~1 µs end-to-end small-message latency and
// ~12.5 GB/s sustained bandwidth.
func FronteraIB() Params {
	return Params{
		Name:            "ib",
		Latency:         vtime.Nanos(750),
		Bandwidth:       12.5e9,
		SendOverhead:    vtime.Nanos(120),
		RecvOverhead:    vtime.Nanos(120),
		EagerThreshold:  16384,
		RndvHandshake:   vtime.Nanos(1600),
		RDMAFinOverhead: vtime.Nanos(80),
	}
}

// Fabric binds channel parameters to a topology, plus an optional
// fault plan the runtime consults on every transfer.
type Fabric struct {
	topo   *cluster.Topology
	intra  Params
	inter  Params
	faults *faults.Plan
}

// New builds a fabric over topo. It panics on invalid parameters; a
// bad cost model would silently corrupt every measurement downstream.
func New(topo *cluster.Topology, intra, inter Params) *Fabric {
	if topo == nil {
		panic("fabric: nil topology")
	}
	if err := intra.Validate(); err != nil {
		panic(err)
	}
	if err := inter.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{topo: topo, intra: intra, inter: inter}
}

// Default builds a Frontera-like fabric over topo.
func Default(topo *cluster.Topology) *Fabric {
	return New(topo, FronteraShm(), FronteraIB())
}

// Topology returns the topology this fabric spans.
func (f *Fabric) Topology() *cluster.Topology { return f.topo }

// Intra returns the intra-node channel parameters.
func (f *Fabric) Intra() Params { return f.intra }

// Inter returns the inter-node channel parameters.
func (f *Fabric) Inter() Params { return f.inter }

// Channel returns the parameters governing src→dst traffic.
func (f *Fabric) Channel(src, dst int) Params {
	if f.topo.SameNode(src, dst) {
		return f.intra
	}
	return f.inter
}

// IsIntra reports whether src→dst is an intra-node path.
func (f *Fabric) IsIntra(src, dst int) bool { return f.topo.SameNode(src, dst) }

// WithFaults attaches a fault plan and returns f for chaining. It
// panics on an invalid plan for the same reason New panics on bad
// channel parameters. Attach before building a World over the fabric:
// the runtime decides at construction time whether its reliability
// sublayer is engaged.
func (f *Fabric) WithFaults(p *faults.Plan) *Fabric {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	f.faults = p
	return f
}

// Faults returns the attached fault plan (nil for a lossless fabric).
func (f *Fabric) Faults() *faults.Plan { return f.faults }

// DataVerdict returns the fate of one transmission attempt on the
// src→dst channel. Lossless fabrics return a clean verdict.
func (f *Fabric) DataVerdict(src, dst int, stream faults.Stream, seq uint64, attempt int) faults.Verdict {
	return f.faults.Data(f.IsIntra(src, dst), src, dst, stream, seq, attempt)
}

// AckDropped reports whether the ack of the given transmission is
// lost. src/dst name the data direction; both endpoints evaluate the
// same arguments and agree.
func (f *Fabric) AckDropped(src, dst int, stream faults.Stream, seq uint64, attempt int) bool {
	return f.faults.AckDropped(f.IsIntra(src, dst), src, dst, stream, seq, attempt)
}

// BurstVerdicts adjudicates one reliable message's whole transmission
// burst in a single call: the per-attempt verdicts up to and including
// the attempt the protocol settles on (an intact copy whose ack
// survives), or all maxAttempts of them when the budget is exhausted.
// settled is that attempt's index, or -1 on exhaustion. Verdicts are
// appended to vs, which callers recycle across messages so the burst
// costs no allocation; the per-attempt answers are identical to
// calling DataVerdict and AckDropped attempt by attempt.
func (f *Fabric) BurstVerdicts(src, dst int, stream faults.Stream, seq uint64, maxAttempts int, vs []faults.Verdict) (_ []faults.Verdict, settled int) {
	intra := f.IsIntra(src, dst)
	for k := 0; k < maxAttempts; k++ {
		v := f.faults.Data(intra, src, dst, stream, seq, k)
		vs = append(vs, v)
		if !v.Drop && v.CorruptPos < 0 && !f.faults.AckDropped(intra, src, dst, stream, seq, k) {
			return vs, k
		}
	}
	return vs, -1
}

// CrashOf returns the crash scheduled for a rank by the attached fault
// plan, if any.
func (f *Fabric) CrashOf(rank int) (faults.Crash, bool) {
	return f.faults.CrashOf(rank)
}
