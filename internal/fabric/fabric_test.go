package fabric

import (
	"testing"
	"testing/quick"

	"mv2j/internal/cluster"
	"mv2j/internal/faults"
	"mv2j/internal/vtime"
)

func TestTransferTime(t *testing.T) {
	p := Params{Name: "x", Latency: vtime.Microsecond, Bandwidth: 1e9}
	// 1000 bytes at 1 GB/s = 1 us; plus 1 us latency = 2 us.
	if got := p.TransferTime(1000); got != 2*vtime.Microsecond {
		t.Fatalf("TransferTime = %v, want 2us", got)
	}
	if got := p.TransferTime(0); got != vtime.Microsecond {
		t.Fatalf("TransferTime(0) = %v, want latency only", got)
	}
}

func TestSerializeTime(t *testing.T) {
	p := Params{Name: "x", Latency: vtime.Microsecond, Bandwidth: 1e9}
	if got := p.SerializeTime(2000); got != 2*vtime.Microsecond {
		t.Fatalf("SerializeTime = %v, want 2us", got)
	}
	if p.SerializeTime(0) != 0 {
		t.Fatal("SerializeTime(0) != 0")
	}
}

func TestChannelSelection(t *testing.T) {
	topo := cluster.New(2, 2) // ranks 0,1 on node 0; 2,3 on node 1
	f := Default(topo)
	if f.Channel(0, 1).Name != "shm" {
		t.Fatal("same-node pair should use shm channel")
	}
	if f.Channel(0, 2).Name != "ib" {
		t.Fatal("cross-node pair should use ib channel")
	}
	if !f.IsIntra(0, 1) || f.IsIntra(1, 2) {
		t.Fatal("IsIntra wrong")
	}
}

func TestPresetSanity(t *testing.T) {
	shm, ib := FronteraShm(), FronteraIB()
	if err := shm.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ib.Validate(); err != nil {
		t.Fatal(err)
	}
	if shm.Latency >= ib.Latency {
		t.Fatal("shared memory must have lower latency than the network")
	}
	if shm.Bandwidth <= ib.Bandwidth {
		t.Fatal("shared memory should have higher bandwidth than one IB link")
	}
	// Native small-message inter-node latency (α + overheads) should be
	// around 1 µs — the ballpark Fig. 11 reports.
	oneByte := ib.TransferTime(1) + ib.SendOverhead + ib.RecvOverhead
	if oneByte < vtime.Micros(0.5) || oneByte > vtime.Micros(2.0) {
		t.Fatalf("native IB 1-byte cost %v outside [0.5us, 2us]", oneByte)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Name: "a", Latency: -1, Bandwidth: 1},
		{Name: "b", Latency: 1, Bandwidth: 0},
		{Name: "c", Latency: 1, Bandwidth: 1, SendOverhead: -1},
		{Name: "d", Latency: 1, Bandwidth: 1, RecvOverhead: -1},
		{Name: "e", Latency: 1, Bandwidth: 1, EagerThreshold: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%q) accepted invalid params", p.Name)
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	topo := cluster.New(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params did not panic")
		}
	}()
	New(topo, Params{Name: "bad", Bandwidth: -1}, FronteraIB())
}

func TestNewPanicsOnNilTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil topo) did not panic")
		}
	}()
	New(nil, FronteraShm(), FronteraIB())
}

// Property: TransferTime is monotonic in message size and always at
// least the latency floor.
func TestTransferMonotonicProperty(t *testing.T) {
	p := FronteraIB()
	f := func(a, b uint32) bool {
		x, y := int(a%(1<<24)), int(b%(1<<24))
		if x > y {
			x, y = y, x
		}
		tx, ty := p.TransferTime(x), p.TransferTime(y)
		return tx <= ty && tx >= p.Latency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TransferTime = Latency + SerializeTime for all sizes.
func TestTransferDecompositionProperty(t *testing.T) {
	p := FronteraShm()
	f := func(a uint32) bool {
		n := int(a % (1 << 24))
		return p.TransferTime(n) == p.Latency+p.SerializeTime(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBurstVerdictsMatchesPerAttempt: the one-call burst adjudication
// must agree, attempt by attempt, with the incremental DataVerdict/
// AckDropped protocol it replaces — including where it stops.
func TestBurstVerdictsMatchesPerAttempt(t *testing.T) {
	topo := cluster.New(2, 2)
	plan := &faults.Plan{
		Seed:  42,
		Intra: faults.Rates{Drop: 0.3, Duplicate: 0.1, Corrupt: 0.15, Delay: 0.2},
		Inter: faults.Rates{Drop: 0.4, Duplicate: 0.05, Corrupt: 0.2, Delay: 0.1},
	}
	f := New(topo, FronteraShm(), FronteraIB()).WithFaults(plan)
	const maxAttempts = 8
	var buf []faults.Verdict
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src == dst {
				continue
			}
			for seq := uint64(1); seq <= 50; seq++ {
				buf, _ = f.BurstVerdicts(src, dst, faults.StreamMatch, seq, maxAttempts, buf[:0])
				vs, settled := f.BurstVerdicts(src, dst, faults.StreamMatch, seq, maxAttempts, nil)
				wantSettled := -1
				for k := 0; k < maxAttempts; k++ {
					v := f.DataVerdict(src, dst, faults.StreamMatch, seq, k)
					if k < len(vs) && vs[k] != v {
						t.Fatalf("%d->%d seq %d attempt %d: burst %+v, incremental %+v", src, dst, seq, k, vs[k], v)
					}
					if !v.Drop && v.CorruptPos < 0 && !f.AckDropped(src, dst, faults.StreamMatch, seq, k) {
						wantSettled = k
						break
					}
				}
				if settled != wantSettled {
					t.Fatalf("%d->%d seq %d: settled %d, want %d", src, dst, seq, settled, wantSettled)
				}
				wantLen := wantSettled + 1
				if wantSettled < 0 {
					wantLen = maxAttempts
				}
				if len(vs) != wantLen {
					t.Fatalf("%d->%d seq %d: %d verdicts, want %d", src, dst, seq, len(vs), wantLen)
				}
				if len(buf) != len(vs) {
					t.Fatalf("recycled buffer produced %d verdicts, fresh %d", len(buf), len(vs))
				}
			}
		}
	}
}
