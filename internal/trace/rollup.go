package trace

import (
	"fmt"
	"io"
	"sort"

	"mv2j/internal/vtime"
)

// Rollups and the protocol-phase breakdown: the aggregate views behind
// the -report flag and the phase-accounting conservation tests.

// RollupKey identifies one (rank, kind) aggregation cell.
type RollupKey struct {
	Rank int
	Kind Kind
}

// Rollup aggregates the events per (rank, kind).
func Rollup(events []Event) map[RollupKey]Stat {
	out := map[RollupKey]Stat{}
	for _, ev := range events {
		k := RollupKey{ev.Rank, ev.Kind}
		s := out[k]
		s.Count++
		s.Bytes += int64(ev.Bytes)
		s.Time += ev.Duration()
		out[k] = s
	}
	return out
}

// Phases is the protocol-phase decomposition of one rank's virtual
// time: where a transfer's end-to-end latency actually went. CopyIn
// and CopyOut are the bindings-layer staging costs (the JNI copy cost
// the paper's figures isolate), Wire is native transport time (send
// injection, receive delivery, one-sided operations), Ack and
// Retransmit are the reliability sublayer's contributions (zero on a
// lossless fabric), and GC is collector pauses. Coll is the envelope
// time of collective calls; it is reported separately because the
// sends and receives a collective issues are already accounted under
// Wire, so adding Coll into a sum would double-count.
// Recovery, like Coll, is an envelope: it wraps the agreement sends
// and receives (already under Wire) plus rollback bookkeeping, so it
// too stays out of Sum.
// Flow is the credit-exhaustion stall time of flow-controlled senders
// (receiver-not-ready parks); like Retransmit it is genuine elapsed
// virtual time on the rank's clock, so it is additive.
type Phases struct {
	CopyIn     vtime.Duration
	Wire       vtime.Duration
	CopyOut    vtime.Duration
	Ack        vtime.Duration
	Retransmit vtime.Duration
	Flow       vtime.Duration
	GC         vtime.Duration
	Coll       vtime.Duration
	Recovery   vtime.Duration
}

// Sum returns the additive phase total: every phase except the Coll
// and Recovery envelopes.
func (p Phases) Sum() vtime.Duration {
	return p.CopyIn + p.Wire + p.CopyOut + p.Ack + p.Retransmit + p.Flow + p.GC
}

// phaseOf classifies an event kind into its phase accumulator, or
// returns nil for kinds outside the breakdown (faults are instants,
// compute is application time).
func phaseOf(p *Phases, k Kind) *vtime.Duration {
	switch k {
	case KindCopyIn:
		return &p.CopyIn
	case KindSend, KindRecv, KindRMA:
		return &p.Wire
	case KindCopyOut:
		return &p.CopyOut
	case KindAck:
		return &p.Ack
	case KindRetransmit:
		return &p.Retransmit
	case KindFlow:
		return &p.Flow
	case KindGC:
		return &p.GC
	case KindColl:
		return &p.Coll
	case KindRecovery:
		return &p.Recovery
	default:
		return nil
	}
}

// PhasesByRank decomposes the events into per-rank phase totals.
func PhasesByRank(events []Event) map[int]Phases {
	out := map[int]Phases{}
	for _, ev := range events {
		p := out[ev.Rank]
		if d := phaseOf(&p, ev.Kind); d != nil {
			*d += ev.Duration()
		}
		out[ev.Rank] = p
	}
	return out
}

// WriteReport writes the human-readable observability report: the
// per-kind rollup per rank, the protocol-phase breakdown, and the
// completeness marker. All tables are emitted in sorted order.
func (r *Recorder) WriteReport(w io.Writer) error {
	events := r.Events()
	roll := Rollup(events)
	keys := make([]RollupKey, 0, len(roll))
	for k := range roll {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rank != keys[j].Rank {
			return keys[i].Rank < keys[j].Rank
		}
		return keys[i].Kind < keys[j].Kind
	})
	if _, err := fmt.Fprintf(w, "events: %d recorded, %d dropped\n", len(events), r.Dropped()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n%-6s %-8s %8s %12s %14s\n", "rank", "kind", "count", "bytes", "time"); err != nil {
		return err
	}
	for _, k := range keys {
		s := roll[k]
		if _, err := fmt.Fprintf(w, "%-6d %-8s %8d %12d %14s\n",
			k.Rank, k.Kind, s.Count, s.Bytes, s.Time); err != nil {
			return err
		}
	}
	phases := PhasesByRank(events)
	ranks := make([]int, 0, len(phases))
	for rank := range phases {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	if _, err := fmt.Fprintf(w, "\n%-6s %12s %12s %12s %12s %12s %12s %12s %12s %12s\n",
		"rank", "copyin", "wire", "copyout", "ack", "retx", "flow", "gc", "coll", "recovery"); err != nil {
		return err
	}
	for _, rank := range ranks {
		p := phases[rank]
		if _, err := fmt.Fprintf(w, "%-6d %12s %12s %12s %12s %12s %12s %12s %12s %12s\n",
			rank, p.CopyIn, p.Wire, p.CopyOut, p.Ack, p.Retransmit, p.Flow, p.GC, p.Coll, p.Recovery); err != nil {
			return err
		}
	}
	return nil
}
