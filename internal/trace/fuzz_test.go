package trace

import (
	"bytes"
	"strings"
	"testing"

	"mv2j/internal/vtime"
)

// FuzzJSONLRoundTrip drives the JSONL trace codec from both ends:
// events synthesized from arbitrary fuzz input must encode and decode
// back to themselves exactly, and the raw input bytes fed straight to
// the parser must never panic (they may, of course, fail to parse).
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add([]byte{}, int64(0), int64(1))
	f.Add([]byte(`{"t":"ev","rank":1,"kind":"send"}`), int64(5), int64(9))
	f.Add([]byte(`{"t":"end","events":0}`), int64(-3), int64(3))
	f.Add([]byte("\xff\x00 detail with \"quotes\" and \\ slashes\nnewline"), int64(1<<40), int64(1<<41))

	f.Fuzz(func(t *testing.T, raw []byte, a, b int64) {
		// Direction 1: arbitrary bytes into the parser. Errors are
		// fine; panics and false round-trips are not.
		if evs, dropped, err := ParseJSONL(bytes.NewReader(raw)); err == nil {
			// Whatever parsed must re-encode parseable with identical
			// content.
			r := New(len(evs) + 1)
			for _, ev := range evs {
				r.Record(ev)
			}
			_ = dropped
			var out bytes.Buffer
			if err := r.WriteJSONL(&out); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			back, _, err := ParseJSONL(&out)
			if err != nil {
				t.Fatalf("re-encoded stream unparseable: %v", err)
			}
			sorted := r.Events()
			if len(back) != len(sorted) {
				t.Fatalf("re-encode changed event count: %d != %d", len(back), len(sorted))
			}
			for i := range sorted {
				if back[i] != sorted[i] {
					t.Fatalf("event %d mutated: %+v != %+v", i, back[i], sorted[i])
				}
			}
		}

		// Direction 2: a synthesized event with hostile strings and
		// extreme timestamps must round-trip exactly.
		r := New(4)
		ev := Event{
			Rank:   int(a % 1024),
			Kind:   Kind(strings.ToValidUTF8(string(raw), "�")),
			Detail: strings.ToValidUTF8(string(raw), "�"),
			Peer:   int(b % 1024),
			Bytes:  int(a%(1<<30)) - (1 << 29),
			Start:  vtime.Time(a),
			End:    vtime.Time(b),
		}
		r.Record(ev)
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, dropped, err := ParseJSONL(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if dropped != 0 || len(back) != 1 || back[0] != ev {
			t.Fatalf("round trip mutated event: %+v -> %+v (dropped %d)", ev, back, dropped)
		}
	})
}
