// Package trace records virtual-time communication events for
// debugging and performance analysis of simulated runs: who sent what
// to whom, when each operation started and completed on the virtual
// clocks, and per-kind aggregate statistics. A Recorder is optional —
// the runtime's hooks are nil-guarded no-ops without one.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"mv2j/internal/vtime"
)

// Kind classifies an event.
type Kind string

const (
	KindSend    Kind = "send"
	KindRecv    Kind = "recv"
	KindColl    Kind = "coll"
	KindRMA     Kind = "rma"
	KindGC      Kind = "gc"
	KindCompute Kind = "compute"
	// KindFault marks an injected fault or a reliability-layer
	// rejection (drop, corrupt, duplicate, delay, peer-failure).
	KindFault Kind = "fault"
	// KindRetransmit marks a retransmission attempt after an ack
	// timeout.
	KindRetransmit Kind = "retx"
	// KindAck marks acknowledgement traffic of the reliability layer.
	KindAck Kind = "ack"
	// KindCopyIn marks the sender-side staging of a user buffer into
	// its native view (JNI boundary + buffering-layer copies).
	KindCopyIn Kind = "copyin"
	// KindCopyOut marks the receiver-side landing of native data back
	// into the user buffer.
	KindCopyOut Kind = "copyout"
	// KindDetect marks a failure-detector transition on the observing
	// rank: the span runs from suspecting a silent peer to confirming
	// it dead.
	KindDetect Kind = "detect"
	// KindRecovery marks fault-tolerance recovery work: agreement,
	// communicator shrink, and checkpoint rollback after a rank death.
	KindRecovery Kind = "recovery"
	// KindReg marks memory-registration work on the RDMA channel: the
	// span covers the driver time of pinning a buffer for remote access
	// (a registration-cache miss) plus any deregistrations the pin-down
	// cache performed to make room. Cache hits cost nothing and emit no
	// event. Like compute, registration is driver time outside the
	// copyin/wire/copyout transfer breakdown (see rollup.go).
	KindReg Kind = "reg"
	// KindFlow marks flow-control stalls: the span covers a sender's
	// receiver-not-ready park while it waits, credits exhausted, for the
	// receiver to consume backlog and return credit. Like an RTO wait
	// the park is real virtual stall time, charged to the sender's
	// clock.
	KindFlow Kind = "flow"
	// KindLock marks a contended entry-lock arbitration under
	// MPI_THREAD_MULTIPLE: the span covers a thread's wait from its
	// attempted library entry to the instant it holds the lock (Peer
	// carries the thread id). Uncontended entries emit nothing.
	KindLock Kind = "lock"
)

// Event is one recorded operation.
type Event struct {
	Rank   int
	Kind   Kind
	Detail string
	Peer   int // -1 when not applicable
	Bytes  int
	Start  vtime.Time
	End    vtime.Time
}

// Duration is the event's virtual span.
func (e Event) Duration() vtime.Duration { return e.End.Sub(e.Start) }

// Recorder accumulates events from all ranks. It is safe for
// concurrent use (rank goroutines record in parallel).
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
}

// New returns a recorder bounded to limit events (0 = 1<<20). When the
// bound is hit, further events are dropped — a trace, not a log sink.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Record appends an event. Nil receivers are silently ignored so call
// sites need no guards.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) < r.limit {
		r.events = append(r.events, ev)
		return
	}
	// Past the bound events are discarded, but never silently: the
	// exporters surface this count so a truncated trace cannot pass
	// itself off as complete.
	r.dropped++
}

// Dropped reports how many events were discarded because the recorder
// was full.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy in canonical order: a total order over every
// field, so the result is independent of recording order. (Start,
// Rank) alone is not enough — one rank can complete two requests at
// the same virtual instant, and which completion the host processed
// first must not leak into exported artifacts.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Start != b.Start:
			return a.Start < b.Start
		case a.Rank != b.Rank:
			return a.Rank < b.Rank
		case a.End != b.End:
			return a.End < b.End
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Peer != b.Peer:
			return a.Peer < b.Peer
		case a.Bytes != b.Bytes:
			return a.Bytes < b.Bytes
		default:
			return a.Detail < b.Detail
		}
	})
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Stat aggregates one event kind.
type Stat struct {
	Count int
	Bytes int64
	Time  vtime.Duration
}

// Summary aggregates events per kind.
func (r *Recorder) Summary() map[Kind]Stat {
	out := map[Kind]Stat{}
	for _, ev := range r.Events() {
		s := out[ev.Kind]
		s.Count++
		s.Bytes += int64(ev.Bytes)
		s.Time += ev.Duration()
		out[ev.Kind] = s
	}
	return out
}

// Timeline writes a human-readable event listing ordered by virtual
// start time.
func (r *Recorder) Timeline(w io.Writer) error {
	for _, ev := range r.Events() {
		peer := "-"
		if ev.Peer >= 0 {
			peer = fmt.Sprintf("%d", ev.Peer)
		}
		if _, err := fmt.Fprintf(w, "%12.3fus  rank %-3d %-8s peer %-3s %8dB  %10s  %s\n",
			vtime.Duration(ev.Start).Micros(), ev.Rank, ev.Kind, peer,
			ev.Bytes, ev.Duration(), ev.Detail); err != nil {
			return err
		}
	}
	return nil
}
