package trace

import (
	"strings"
	"testing"

	"mv2j/internal/vtime"
)

func ev(rank int, kind Kind, start, end int64) Event {
	return Event{Rank: rank, Kind: kind, Peer: -1, Start: vtime.Time(start), End: vtime.Time(end)}
}

func TestRecordAndSort(t *testing.T) {
	r := New(0)
	r.Record(ev(1, KindRecv, 50, 90))
	r.Record(ev(0, KindSend, 10, 20))
	r.Record(ev(2, KindSend, 10, 25))
	out := r.Events()
	if len(out) != 3 {
		t.Fatalf("Len = %d", len(out))
	}
	if out[0].Rank != 0 || out[1].Rank != 2 || out[2].Rank != 1 {
		t.Fatalf("sort order wrong: %+v", out)
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(ev(0, KindSend, 0, 1)) // must not panic
	if r.Len() != 0 {
		t.Fatal("nil recorder reported events")
	}
}

func TestLimit(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(ev(0, KindSend, int64(i), int64(i+1)))
	}
	if r.Len() != 2 {
		t.Fatalf("limit not enforced: %d", r.Len())
	}
}

func TestSummary(t *testing.T) {
	r := New(0)
	r.Record(Event{Rank: 0, Kind: KindSend, Bytes: 100, Start: 0, End: vtime.Time(vtime.Microsecond)})
	r.Record(Event{Rank: 1, Kind: KindSend, Bytes: 200, Start: 0, End: vtime.Time(2 * vtime.Microsecond)})
	r.Record(Event{Rank: 1, Kind: KindColl, Detail: "bcast", Start: 0, End: vtime.Time(vtime.Microsecond)})
	s := r.Summary()
	if s[KindSend].Count != 2 || s[KindSend].Bytes != 300 || s[KindSend].Time != 3*vtime.Microsecond {
		t.Fatalf("send summary wrong: %+v", s[KindSend])
	}
	if s[KindColl].Count != 1 {
		t.Fatalf("coll summary wrong: %+v", s[KindColl])
	}
}

func TestTimelineFormat(t *testing.T) {
	r := New(0)
	r.Record(Event{Rank: 3, Kind: KindSend, Peer: 1, Bytes: 64,
		Start: vtime.Time(vtime.Microsecond), End: vtime.Time(2 * vtime.Microsecond)})
	var sb strings.Builder
	if err := r.Timeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rank 3", "send", "peer 1", "64B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline %q missing %q", out, want)
		}
	}
}
