package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mv2j/internal/vtime"
)

// Structured exporters. Both formats are pure functions of the
// recorder's (deterministically ordered) event list, so a seeded run
// exports byte-identical artifacts every time — the property the
// golden-file suites pin down.
//
//   - JSONL: one self-describing JSON object per line; machine-diffable
//     and round-trippable through ParseJSONL.
//   - Chrome trace_event JSON: loadable in chrome://tracing or Perfetto,
//     with one process row per simulated node and one thread row per
//     rank.

// jsonlLine is the one-line wire form of the JSONL stream. Type "ev"
// lines carry an event; the single trailing "end" line carries the
// completeness marker (total recorded events and the count dropped past
// the recorder's bound).
type jsonlLine struct {
	T       string `json:"t"`
	Rank    int    `json:"rank,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Peer    int    `json:"peer,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Start   int64  `json:"start,omitempty"` // virtual picoseconds
	End     int64  `json:"end,omitempty"`
	Events  int    `json:"events,omitempty"`
	Dropped int64  `json:"dropped,omitempty"`
}

// WriteJSONL writes every event as one JSON line, terminated by an
// "end" marker line that carries the event count and the number of
// events dropped past the recorder's bound — a truncated trace is
// thereby self-declaring, never silently incomplete.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := r.Events()
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		line := jsonlLine{
			T: "ev", Rank: ev.Rank, Kind: string(ev.Kind), Detail: ev.Detail,
			Peer: ev.Peer, Bytes: ev.Bytes, Start: int64(ev.Start), End: int64(ev.End),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	end := jsonlLine{T: "end", Events: len(events), Dropped: r.Dropped()}
	if err := enc.Encode(end); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseJSONL is the inverse of WriteJSONL: it decodes the event stream
// and returns the events plus the dropped-event count declared by the
// trailing marker. A stream without an "end" marker is an error — it
// was truncated in transit.
func ParseJSONL(rd io.Reader) (events []Event, dropped int64, err error) {
	dec := json.NewDecoder(rd)
	sawEnd := false
	for {
		var line jsonlLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, 0, fmt.Errorf("trace: bad JSONL line %d: %w", len(events)+1, err)
		}
		if sawEnd {
			return nil, 0, fmt.Errorf("trace: data after the end marker")
		}
		switch line.T {
		case "ev":
			events = append(events, Event{
				Rank: line.Rank, Kind: Kind(line.Kind), Detail: line.Detail,
				Peer: line.Peer, Bytes: line.Bytes,
				Start: vtime.Time(line.Start), End: vtime.Time(line.End),
			})
		case "end":
			sawEnd = true
			dropped = line.Dropped
			if line.Events != len(events) {
				return nil, 0, fmt.Errorf("trace: end marker declares %d events, stream has %d",
					line.Events, len(events))
			}
		default:
			return nil, 0, fmt.Errorf("trace: unknown line type %q", line.T)
		}
	}
	if !sawEnd {
		return nil, 0, fmt.Errorf("trace: stream has no end marker (truncated)")
	}
	return events, dropped, nil
}

// ChromeOptions configures the Chrome trace_event export.
type ChromeOptions struct {
	// NodeOf maps a rank to its simulated node, which becomes the
	// Chrome pid (one process row per node). Nil puts every rank on
	// node 0.
	NodeOf func(rank int) int
}

// chromeEvent is one trace_event entry. Complete spans use ph "X" with
// a duration; zero-duration events export as thread-scoped instants
// (ph "i") so they remain visible in the viewer.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the recorder in Chrome trace_event JSON:
// open chrome://tracing (or https://ui.perfetto.dev) and load the file.
// Each simulated node is one pid, each rank one tid within it.
func (r *Recorder) WriteChromeTrace(w io.Writer, opts ChromeOptions) error {
	nodeOf := opts.NodeOf
	if nodeOf == nil {
		nodeOf = func(int) int { return 0 }
	}
	events := r.Events()

	// Name the process and thread rows, in deterministic rank order.
	seenNode := map[int]bool{}
	seenRank := map[int]bool{}
	var out []chromeEvent
	for _, ev := range events {
		node := nodeOf(ev.Rank)
		if !seenNode[node] {
			seenNode[node] = true
			out = append(out, chromeEvent{
				Name: "process_name", Phase: "M", PID: node,
				Args: map[string]any{"name": fmt.Sprintf("node %d", node)},
			})
		}
		if !seenRank[ev.Rank] {
			seenRank[ev.Rank] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", PID: node, TID: ev.Rank,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", ev.Rank)},
			})
		}
	}
	for _, ev := range events {
		name := string(ev.Kind)
		if ev.Detail != "" {
			name += " " + ev.Detail
		}
		args := map[string]any{"bytes": ev.Bytes}
		if ev.Peer >= 0 {
			args["peer"] = ev.Peer
		}
		ce := chromeEvent{
			Name: name, Cat: string(ev.Kind),
			PID: nodeOf(ev.Rank), TID: ev.Rank,
			TS: vtime.Duration(ev.Start).Micros(), Args: args,
		}
		if ev.End > ev.Start {
			dur := ev.End.Sub(ev.Start).Micros()
			ce.Phase, ce.Dur = "X", &dur
		} else {
			ce.Phase, ce.Scope = "i", "t"
		}
		out = append(out, ce)
	}
	doc := chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"events":  len(events),
			"dropped": r.Dropped(),
		},
	}
	if len(out) == 0 {
		doc.TraceEvents = []chromeEvent{}
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
