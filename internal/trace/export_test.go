package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mv2j/internal/vtime"
)

func sampleRecorder() *Recorder {
	r := New(0)
	r.Record(Event{Rank: 0, Kind: KindCopyIn, Bytes: 64, Start: 0, End: 100})
	r.Record(Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 64, Start: 100, End: 350})
	r.Record(Event{Rank: 1, Kind: KindRecv, Peer: 0, Bytes: 64, Start: 80, End: 500})
	r.Record(Event{Rank: 1, Kind: KindCopyOut, Bytes: 64, Start: 500, End: 620})
	r.Record(Event{Rank: 1, Kind: KindFault, Detail: "drop match seq=1 attempt=0", Peer: 0, Start: 90, End: 90})
	r.Record(Event{Rank: 0, Kind: KindColl, Detail: "bcast", Peer: -1, Bytes: 4, Start: 400, End: 900})
	return r
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	want := r.Events()
	if len(events) != len(want) {
		t.Fatalf("round trip lost events: %d != %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, events[i], want[i])
		}
	}
}

func TestJSONLTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Chop the end marker off: the parser must refuse.
	s := buf.String()
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n")
	if _, _, err := ParseJSONL(strings.NewReader(truncated)); err == nil {
		t.Fatal("truncated stream parsed without error")
	}
}

// TestDroppedEventsSurfaced is the silent-event-loss regression test:
// a recorder past its bound must count the overflow, and both
// exporters must declare it.
func TestDroppedEventsSurfaced(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Rank: 0, Kind: KindSend, Start: vtime.Time(i), End: vtime.Time(i + 1)})
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}

	var jl bytes.Buffer
	if err := r.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := ParseJSONL(&jl)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || dropped != 3 {
		t.Fatalf("JSONL marker: events=%d dropped=%d, want 2/3", len(events), dropped)
	}

	var ct bytes.Buffer
	if err := r.WriteChromeTrace(&ct, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(ct.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got, ok := doc.OtherData["dropped"].(float64); !ok || got != 3 {
		t.Fatalf("Chrome trace dropped marker = %v, want 3", doc.OtherData["dropped"])
	}

	var rep bytes.Buffer
	if err := r.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "3 dropped") {
		t.Fatalf("report does not surface the drop count:\n%s", rep.String())
	}

	// A nil recorder reports no drops.
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Fatal("nil recorder reported drops")
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	nodeOf := func(rank int) int { return rank } // 1 ppn: rank == node
	if err := r.WriteChromeTrace(&buf, ChromeOptions{NodeOf: nodeOf}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			TS    float64        `json:"ts"`
			Dur   *float64       `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	var meta, spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur <= 0 {
				t.Fatalf("span %q without positive dur", ev.Name)
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
		if ev.PID != ev.TID && ev.Phase != "M" {
			t.Fatalf("with 1 ppn pid must equal tid: %+v", ev)
		}
	}
	// 2 process_name + 2 thread_name metadata rows, 5 spans, 1 instant
	// (the zero-duration fault).
	if meta != 4 || spans != 5 || instants != 1 {
		t.Fatalf("meta=%d spans=%d instants=%d", meta, spans, instants)
	}
}

func TestExportsAreDeterministic(t *testing.T) {
	render := func() (string, string) {
		r := sampleRecorder()
		var jl, ct bytes.Buffer
		if err := r.WriteJSONL(&jl); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteChromeTrace(&ct, ChromeOptions{NodeOf: func(r int) int { return r / 2 }}); err != nil {
			t.Fatal(err)
		}
		return jl.String(), ct.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Fatal("JSONL export not deterministic")
	}
	if c1 != c2 {
		t.Fatal("Chrome export not deterministic")
	}
}

func TestRollupAndPhases(t *testing.T) {
	r := sampleRecorder()
	roll := Rollup(r.Events())
	if s := roll[RollupKey{0, KindSend}]; s.Count != 1 || s.Bytes != 64 || s.Time != 250 {
		t.Fatalf("rank-0 send rollup: %+v", s)
	}
	if s := roll[RollupKey{1, KindRecv}]; s.Count != 1 || s.Time != 420 {
		t.Fatalf("rank-1 recv rollup: %+v", s)
	}
	ph := PhasesByRank(r.Events())
	p0, p1 := ph[0], ph[1]
	if p0.CopyIn != 100 || p0.Wire != 250 || p0.Coll != 500 {
		t.Fatalf("rank-0 phases: %+v", p0)
	}
	if p1.Wire != 420 || p1.CopyOut != 120 || p1.Ack != 0 || p1.Retransmit != 0 {
		t.Fatalf("rank-1 phases: %+v", p1)
	}
	// Coll is the envelope, excluded from the additive sum.
	if p0.Sum() != 100+250 {
		t.Fatalf("rank-0 phase sum = %v", p0.Sum())
	}
	var rep bytes.Buffer
	if err := r.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"copyin", "wire", "coll", "rank"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, rep.String())
		}
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"t":"wat"}`,
		`{"t":"end","events":3}`, // declares more events than present
		`not json at all`,
		`{"t":"end","events":0}` + "\n" + `{"t":"ev"}`, // data after end
	}
	for _, c := range cases {
		if _, _, err := ParseJSONL(strings.NewReader(c)); err == nil {
			t.Fatalf("ParseJSONL(%q) accepted garbage", c)
		}
	}
}
