package jni

import (
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

func newEnv(t testing.TB) (*Env, *jvm.Machine, *vtime.Clock) {
	t.Helper()
	clock := vtime.NewClock()
	m := jvm.NewMachine(clock, jvm.Options{HeapSize: 1 << 20, ArenaSize: 1 << 20})
	return New(m), m, clock
}

func TestGetArrayElementsCopies(t *testing.T) {
	e, m, _ := newEnv(t)
	a := m.MustArray(jvm.Byte, 8)
	a.SetInt(0, 11)
	elems := e.GetArrayElements(a)
	if elems[0] != 11 {
		t.Fatal("native copy missing array contents")
	}
	// Mutating the native copy must NOT be visible until release:
	// this is a copy, not a pinned pointer.
	elems[0] = 99
	if a.Int(0) != 11 {
		t.Fatal("GetArrayElements returned an aliased view; must copy on non-pinning JVMs")
	}
	e.ReleaseArrayElements(a, elems, CopyBack)
	if a.Int(0) != 99 {
		t.Fatal("ReleaseArrayElements(CopyBack) did not write back")
	}
}

func TestReleaseAbortSkipsCopyBack(t *testing.T) {
	e, m, _ := newEnv(t)
	a := m.MustArray(jvm.Byte, 4)
	elems := e.GetArrayElements(a)
	elems[2] = 42
	e.ReleaseArrayElements(a, elems, Abort)
	if a.Int(2) != 0 {
		t.Fatal("Abort mode must not write back")
	}
	s := e.Stats()
	if s.ArrayCopyOut != 1 || s.ArrayCopyBack != 0 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestReleaseLengthMismatchPanics(t *testing.T) {
	e, m, _ := newEnv(t)
	a := m.MustArray(jvm.Int, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	e.ReleaseArrayElements(a, make([]byte, 3), CopyBack)
}

func TestCopyPathCostsMoreThanCriticalPath(t *testing.T) {
	e, m, clock := newEnv(t)
	a := m.MustArray(jvm.Byte, 1<<16)

	t0 := clock.Now()
	elems := e.GetArrayElements(a)
	e.ReleaseArrayElements(a, elems, CopyBack)
	copying := clock.Now().Sub(t0)

	t1 := clock.Now()
	view := e.GetPrimitiveArrayCritical(a)
	_ = view
	e.ReleasePrimitiveArrayCritical(a)
	critical := clock.Now().Sub(t1)

	if copying < 4*critical {
		t.Fatalf("copying path (%v) should dwarf the critical path (%v) for 64KB", copying, critical)
	}
}

func TestCriticalDisablesGC(t *testing.T) {
	e, m, _ := newEnv(t)
	a := m.MustArray(jvm.Byte, 16)
	view := e.GetPrimitiveArrayCritical(a)
	if !m.InCritical() {
		t.Fatal("critical region not opened")
	}
	if err := m.GC(); err == nil {
		t.Fatal("GC must refuse to run during a critical region")
	}
	view[3] = 7 // zero-copy: writes hit the heap directly
	e.ReleasePrimitiveArrayCritical(a)
	if m.InCritical() {
		t.Fatal("critical region not closed")
	}
	if a.Int(3) != 7 {
		t.Fatal("critical view was not zero-copy")
	}
}

func TestGetDirectBufferAddress(t *testing.T) {
	e, m, _ := newEnv(t)
	direct := m.MustAllocateDirect(32)
	view := e.GetDirectBufferAddress(direct)
	if view == nil || len(view) != 32 {
		t.Fatalf("direct address view wrong: len=%d", len(view))
	}
	view[0] = 0xAB // native write, zero copy
	if direct.ByteAt(0) != 0xAB {
		t.Fatal("direct buffer view is not aliased storage")
	}
	heap, err := m.Allocate(32)
	if err != nil {
		t.Fatal(err)
	}
	if e.GetDirectBufferAddress(heap) != nil {
		t.Fatal("heap buffer must yield nil address (JNI NULL)")
	}
	if e.GetDirectBufferCapacity(direct) != 32 || e.GetDirectBufferCapacity(heap) != -1 {
		t.Fatal("GetDirectBufferCapacity wrong")
	}
}

func TestDirectBufferPathIsCheapest(t *testing.T) {
	e, m, clock := newEnv(t)
	a := m.MustArray(jvm.Byte, 1<<20)
	b := m.MustAllocateDirect(1 << 20)

	t0 := clock.Now()
	elems := e.GetArrayElements(a)
	e.ReleaseArrayElements(a, elems, CopyBack)
	arrayPath := clock.Now().Sub(t0)

	t1 := clock.Now()
	_ = e.GetDirectBufferAddress(b)
	bufferPath := clock.Now().Sub(t1)

	if bufferPath*100 > arrayPath {
		t.Fatalf("direct path (%v) should be ~free next to the 1MB copy path (%v)", bufferPath, arrayPath)
	}
}

func TestRegionCopiesOnlyTheSubset(t *testing.T) {
	e, m, clock := newEnv(t)
	a := m.MustArray(jvm.Int, 1<<18) // 1 MiB of ints
	small := make([]byte, 64*4)

	t0 := clock.Now()
	e.GetArrayRegion(a, 100, 64, small)
	region := clock.Now().Sub(t0)

	t1 := clock.Now()
	elems := e.GetArrayElements(a)
	e.ReleaseArrayElements(a, elems, Abort)
	full := clock.Now().Sub(t1)

	if region*50 > full {
		t.Fatalf("region copy (%v) should be tiny next to the full-array copy (%v)", region, full)
	}
}

func TestRegionRoundTrip(t *testing.T) {
	e, m, _ := newEnv(t)
	a := m.MustArray(jvm.Short, 16)
	src := []byte{1, 2, 3, 4}
	e.SetArrayRegion(a, 5, src)
	dst := make([]byte, 4)
	e.GetArrayRegion(a, 5, 2, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("region round trip mismatch: %v vs %v", dst, src)
		}
	}
}

func TestRegionSizeMismatchPanics(t *testing.T) {
	e, m, _ := newEnv(t)
	a := m.MustArray(jvm.Int, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("GetArrayRegion size mismatch did not panic")
		}
	}()
	e.GetArrayRegion(a, 0, 4, make([]byte, 15))
}

func TestCrossingChargesTime(t *testing.T) {
	e, _, clock := newEnv(t)
	t0 := clock.Now()
	e.CallNative()
	if clock.Now().Sub(t0) != DefaultCosts().Crossing {
		t.Fatal("CallNative did not charge one crossing")
	}
	if e.Stats().Calls != 1 {
		t.Fatal("call counter wrong")
	}
}

func TestNewPanicsOnNilMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}
