package jni

import (
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

func newPinEnv(t testing.TB) (*Env, *jvm.Machine, *vtime.Clock) {
	t.Helper()
	clock := vtime.NewClock()
	m := jvm.NewMachine(clock, jvm.Options{
		HeapSize: 1 << 20, ArenaSize: 1 << 20, AllowPinning: true,
	})
	return New(m), m, clock
}

func TestGetArrayElementsPinsOnPinningJVM(t *testing.T) {
	e, m, _ := newPinEnv(t)
	a := m.MustArray(jvm.Byte, 16)
	a.SetInt(3, 7)
	elems := e.GetArrayElements(a)
	if elems[3] != 7 {
		t.Fatal("pinned view missing array contents")
	}
	// The view aliases the array: a write through it is immediately
	// visible (isCopy=false semantics).
	elems[3] = 42
	if a.Int(3) != 42 {
		t.Fatal("pinning JVM must alias the array storage")
	}
	if got := e.Stats().ArraysPinned; got != 1 {
		t.Fatalf("ArraysPinned = %d, want 1", got)
	}
	e.ReleaseArrayElements(a, elems, CopyBack)
	if a.Int(3) != 42 {
		t.Fatal("contents lost across release")
	}
}

func TestPinnedArrayDoesNotMoveDuringGC(t *testing.T) {
	e, m, _ := newPinEnv(t)
	junk := m.MustArray(jvm.Byte, 4096) // garbage below the pinned array
	a := m.MustArray(jvm.Byte, 64)
	a.SetInt(0, 9)
	elems := e.GetArrayElements(a)
	off := a.Offset()
	junk.Discard()
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if a.Offset() != off {
		t.Fatalf("pinned array moved: %d -> %d", off, a.Offset())
	}
	if elems[0] != 9 {
		t.Fatal("pinned view invalidated by GC")
	}
	e.ReleaseArrayElements(a, elems, CopyBack)
	// Unpinned now: the next collection is free to slide it down.
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if a.Offset() == off {
		t.Fatal("array still immovable after release")
	}
	if a.Int(0) != 9 {
		t.Fatal("contents lost across compaction")
	}
}

func TestReleaseCommitKeepsPin(t *testing.T) {
	e, m, _ := newPinEnv(t)
	junk := m.MustArray(jvm.Byte, 4096)
	a := m.MustArray(jvm.Byte, 64)
	elems := e.GetArrayElements(a)
	off := a.Offset()
	junk.Discard()
	e.ReleaseArrayElements(a, elems, Commit)
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if a.Offset() != off {
		t.Fatal("Commit must keep the array pinned")
	}
	e.ReleaseArrayElements(a, elems, CopyBack)
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if a.Offset() == off {
		t.Fatal("array still pinned after final release")
	}
}

func TestReleaseAbortUnpins(t *testing.T) {
	e, m, _ := newPinEnv(t)
	junk := m.MustArray(jvm.Byte, 4096)
	a := m.MustArray(jvm.Byte, 64)
	elems := e.GetArrayElements(a)
	off := a.Offset()
	junk.Discard()
	e.ReleaseArrayElements(a, elems, Abort)
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if a.Offset() == off {
		t.Fatal("Abort must unpin the array")
	}
}

// TestPinningKeepsVirtualCostsAndStats is the invariant the whole
// satellite rests on: a pinning JVM changes host-side data movement
// only. Virtual time and the scraped Stats counters must be
// indistinguishable from the copying JVM's.
func TestPinningKeepsVirtualCostsAndStats(t *testing.T) {
	run := func(pin bool) (vtime.Time, Stats) {
		clock := vtime.NewClock()
		m := jvm.NewMachine(clock, jvm.Options{
			HeapSize: 1 << 20, ArenaSize: 1 << 20, AllowPinning: pin,
		})
		e := New(m)
		a := m.MustArray(jvm.Byte, 1024)
		for i := 0; i < 3; i++ {
			elems := e.GetArrayElements(a)
			elems[0] = byte(i)
			e.ReleaseArrayElements(a, elems, CopyBack)
		}
		elems := e.GetArrayElements(a)
		e.ReleaseArrayElements(a, elems, Abort)
		return clock.Now(), e.Stats()
	}
	tCopy, sCopy := run(false)
	tPin, sPin := run(true)
	if tCopy != tPin {
		t.Fatalf("virtual time differs: copy=%v pin=%v", tCopy, tPin)
	}
	if sCopy.ArraysPinned != 0 || sPin.ArraysPinned != 4 {
		t.Fatalf("ArraysPinned: copy=%d pin=%d", sCopy.ArraysPinned, sPin.ArraysPinned)
	}
	sPin.ArraysPinned = 0
	if sCopy != sPin {
		t.Fatalf("deterministic stats differ:\ncopy: %+v\npin:  %+v", sCopy, sPin)
	}
}
