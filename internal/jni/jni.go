// Package jni models the Java Native Interface boundary between the
// simulated JVM and the "native" MPI library. It implements exactly the
// three data paths the paper's Section IV discusses, with their cost
// and correctness contracts:
//
//   - Get<Type>ArrayElements / Release<Type>ArrayElements: the
//     JVM-documentation-recommended way to reach a Java array from C.
//     On JVMs without pinning (all modern ones) it COPIES the array out
//     and back, costing two memcpys plus the call crossings.
//   - GetPrimitiveArrayCritical / ReleasePrimitiveArrayCritical: a
//     zero-copy view, but garbage collection is disabled while the
//     region is open — the hazard that makes it "not recommended".
//   - GetDirectBufferAddress: a free, stable pointer to a direct
//     ByteBuffer's off-heap storage; returns nil for heap buffers just
//     as the real call returns NULL.
//
// Every crossing charges virtual time, which is how the ~1 µs Java
// layer overhead of the paper's Fig. 11 arises.
package jni

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// Costs parameterises the boundary overheads.
type Costs struct {
	// Crossing is charged on every JNI call (argument marshalling,
	// handle table lookup, state transition).
	Crossing vtime.Duration
	// GetElements/ReleaseElements add fixed costs on the copying array
	// path beyond the bulk copy itself.
	GetElementsFixed     vtime.Duration
	ReleaseElementsFixed vtime.Duration
}

// DefaultCosts returns crossing costs in the range measured for real
// JNI downcalls on OpenJDK (a few hundred nanoseconds per call pair).
func DefaultCosts() Costs {
	return Costs{
		Crossing:             vtime.Nanos(140),
		GetElementsFixed:     vtime.Nanos(80),
		ReleaseElementsFixed: vtime.Nanos(80),
	}
}

// ReleaseMode selects Release<Type>ArrayElements behaviour.
type ReleaseMode int

const (
	// CopyBack writes the native copy back and frees it (mode 0).
	CopyBack ReleaseMode = iota
	// Commit writes back but keeps the native copy valid (JNI_COMMIT).
	Commit
	// Abort frees the native copy without writing back (JNI_ABORT).
	Abort
)

// Stats counts boundary activity for one Env.
//
// The first five counters are part of the deterministic artifact
// surface (core/observe scrapes them into the metrics registry), so
// they advance identically on pinning and non-pinning JVMs: a pinned
// Get/Release pair still counts as ArrayCopyOut/ArrayCopyBack with the
// same CopiedBytes, because those model what the JNI *contract*
// charges, not what the host executed. ArraysPinned is host-side
// bookkeeping only.
type Stats struct {
	Calls          int64
	ArrayCopyOut   int64
	ArrayCopyBack  int64
	CopiedBytes    int64
	CriticalEnters int64
	// ArraysPinned counts Get<Type>ArrayElements calls served by
	// pinning the array instead of copying it (isCopy=false). Never
	// scraped into the deterministic registry.
	ArraysPinned int64
}

// Env is one rank's JNI environment.
type Env struct {
	m     *jvm.Machine
	costs Costs
	stats Stats
}

// New builds an Env over machine m with default costs.
func New(m *jvm.Machine) *Env { return NewWithCosts(m, DefaultCosts()) }

// NewWithCosts builds an Env with an explicit cost model.
func NewWithCosts(m *jvm.Machine, c Costs) *Env {
	if m == nil {
		panic("jni: nil machine")
	}
	return &Env{m: m, costs: c}
}

// Machine returns the JVM this environment belongs to.
func (e *Env) Machine() *jvm.Machine { return e.m }

// Stats returns a snapshot of the boundary counters.
func (e *Env) Stats() Stats { return e.stats }

func (e *Env) cross() {
	e.stats.Calls++
	e.m.Charge(e.costs.Crossing)
}

// CallNative models invoking a native function through JNI: one
// crossing charge. The bindings call it once per MPI primitive.
func (e *Env) CallNative() { e.cross() }

// GetArrayElements returns the array's contents for native use,
// charging the crossing, the fixed get cost, and a bulk copy of the
// whole payload — the full-array copy the paper points out is paid
// even when only a subset is needed.
//
// On JVMs without pinning support (the default, and all the JVMs the
// paper measures) the returned slice is a fresh native copy. On a
// pinning JVM (jvm.Options.AllowPinning) the call pins the array and
// returns its actual storage — the isCopy=false case the JNI spec
// permits — eliding the host memcpy in each direction. The virtual
// cost model and the deterministic Stats counters are IDENTICAL on
// both kinds of machine: real JNI implementations charge the access
// either way, and keeping the charges equal is what lets the metrics
// goldens hold regardless of host-side data movement (the same
// invariant the zero-copy rendezvous path obeys; see DESIGN.md).
func (e *Env) GetArrayElements(a jvm.Array) []byte {
	e.cross()
	e.m.Charge(e.costs.GetElementsFixed)
	n := a.SizeBytes()
	e.m.ChargeBulk(n)
	e.stats.ArrayCopyOut++
	e.stats.CopiedBytes += int64(n)
	if n > 0 && e.m.CanPin() {
		if err := e.m.Pin(a.Ref()); err == nil {
			e.stats.ArraysPinned++
			return a.RawBytes()
		}
	}
	out := make([]byte, n)
	copy(out, a.RawBytes())
	return out
}

// ReleaseArrayElements completes the array-elements pair: unless mode
// is Abort, the contents are committed back into the array, charging
// another bulk copy. If elems aliases the array's own storage (the
// pinning path of GetArrayElements), the host copy-back is elided and
// the pin is released — except under Commit, which keeps the native
// view valid and therefore keeps the array pinned.
func (e *Env) ReleaseArrayElements(a jvm.Array, elems []byte, mode ReleaseMode) {
	if len(elems) != a.SizeBytes() {
		panic(fmt.Sprintf("jni: ReleaseArrayElements length %d != array %d bytes",
			len(elems), a.SizeBytes()))
	}
	e.cross()
	e.m.Charge(e.costs.ReleaseElementsFixed)
	raw := a.RawBytes()
	pinned := len(elems) > 0 && len(raw) > 0 && &elems[0] == &raw[0]
	if mode != Abort {
		if !pinned {
			copy(raw, elems)
		}
		e.m.ChargeBulk(len(elems))
		e.stats.ArrayCopyBack++
		e.stats.CopiedBytes += int64(len(elems))
	}
	if pinned && mode != Commit {
		if err := e.m.Unpin(a.Ref()); err != nil {
			panic(err)
		}
	}
}

// GetArrayRegion copies elements [elemOff, elemOff+n) into dst without
// materialising the whole array — the subset path that an offset
// argument in the bindings API would enable (paper §IV-B).
func (e *Env) GetArrayRegion(a jvm.Array, elemOff, n int, dst []byte) {
	sz := a.Kind().Size()
	if len(dst) != n*sz {
		panic(fmt.Sprintf("jni: GetArrayRegion dst %d bytes != %d elements of %v", len(dst), n, a.Kind()))
	}
	e.cross()
	a.CopyOutBytes(elemOff*sz, dst) // charges bulk for just the region
	e.stats.CopiedBytes += int64(len(dst))
}

// SetArrayRegion copies src into elements [elemOff, ...) of a.
func (e *Env) SetArrayRegion(a jvm.Array, elemOff int, src []byte) {
	e.cross()
	a.CopyInBytes(elemOff*a.Kind().Size(), src)
	e.stats.CopiedBytes += int64(len(src))
}

// GetPrimitiveArrayCritical returns a zero-copy view of the array and
// disables garbage collection until the matching release. The returned
// slice aliases the heap: it is valid precisely because the collector
// cannot run.
func (e *Env) GetPrimitiveArrayCritical(a jvm.Array) []byte {
	e.cross()
	e.m.EnterCritical()
	e.stats.CriticalEnters++
	return a.RawBytes()
}

// ReleasePrimitiveArrayCritical closes the critical region; a deferred
// collection, if any, runs now (and its pause lands on this rank).
func (e *Env) ReleasePrimitiveArrayCritical(a jvm.Array) {
	_ = a
	e.cross()
	e.m.ExitCritical()
}

// directLookup is the cost of resolving a direct buffer's address or
// capacity. Unlike the array paths, these JNI functions are called
// from within the already-entered native frame — no state transition,
// just a field read off the Buffer object — so they cost nanoseconds,
// not a crossing.
const directLookup = 12 * vtime.Nanosecond

// GetDirectBufferAddress returns the stable storage of a direct buffer
// with no copy, or nil for heap buffers (JNI returns NULL). The slice
// covers the full capacity, like the JNI address + capacity pair.
func (e *Env) GetDirectBufferAddress(b *jvm.ByteBuffer) []byte {
	e.stats.Calls++
	e.m.Charge(directLookup)
	if !b.IsDirect() {
		return nil
	}
	return b.RawBytes()
}

// GetDirectBufferCapacity returns the capacity of a direct buffer, or
// -1 for heap buffers.
func (e *Env) GetDirectBufferCapacity(b *jvm.ByteBuffer) int {
	e.stats.Calls++
	e.m.Charge(directLookup)
	if !b.IsDirect() {
		return -1
	}
	return b.Capacity()
}
