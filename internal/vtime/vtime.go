// Package vtime provides the virtual-time substrate for the simulated
// cluster. All "measurements" reported by the benchmark harness are
// differences of virtual timestamps, never wall-clock readings, which
// makes every experiment deterministic and reproducible.
//
// Time is kept in integer picoseconds. Sub-nanosecond resolution
// matters because per-byte costs on a 100 Gb/s-class fabric are on the
// order of 0.08 ns/byte; integer arithmetic keeps accumulation exact.
package vtime

import "fmt"

// Time is an absolute virtual timestamp in picoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Nanos reports d as floating-point nanoseconds.
func (d Duration) Nanos() float64 { return float64(d) / float64(Nanosecond) }

// String formats the duration with a unit chosen by magnitude.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", d.Nanos())
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Micros constructs a duration from floating-point microseconds.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Nanos constructs a duration from floating-point nanoseconds.
func Nanos(ns float64) Duration { return Duration(ns * float64(Nanosecond)) }

// PerByte returns the time to move n bytes at the given rate in
// bytes per second. It is the β·n term of the LogGP model.
func PerByte(n int, bytesPerSecond float64) Duration {
	if n <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSecond * float64(Second))
}

// PerElement returns n times the per-element cost each.
func PerElement(n int, each Duration) Duration {
	if n <= 0 {
		return 0
	}
	return Duration(n) * each
}

// PhaseKey is the total ordering key of the phase-stepped engine's
// event merge: events emitted concurrently by ranks runnable at the
// same virtual tick are delivered in (At, Src, Seq) order. The key is
// total — two events from the same source always carry distinct
// sequence numbers — so the merged delivery order is independent of
// which worker goroutine ran which rank, and the parallel engine's
// virtual artifacts stay byte-identical to the serial engine's.
type PhaseKey struct {
	At  Time   // virtual arrival time of the event
	Src int    // emitting world rank
	Seq uint64 // per-source emission counter (monotone within a rank)
}

// Compare orders a before b when a's key is smaller; it returns a
// negative number, zero, or a positive number as in cmp.Compare.
func (a PhaseKey) Compare(b PhaseKey) int {
	switch {
	case a.At != b.At:
		if a.At < b.At {
			return -1
		}
		return 1
	case a.Src != b.Src:
		if a.Src < b.Src {
			return -1
		}
		return 1
	case a.Seq != b.Seq:
		if a.Seq < b.Seq {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Clock is a per-rank virtual clock. A Clock is owned by exactly one
// rank goroutine and is not safe for concurrent use; cross-rank clock
// propagation happens through message timestamps.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += Time(d)
	}
}

// AdvanceTo moves the clock forward to t if t is in the future;
// otherwise it is a no-op. This is the merge operation used when a
// message carrying a remote timestamp is consumed.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only the SPMD harness uses this,
// between benchmark repetitions.
func (c *Clock) Reset() { c.now = 0 }

// SetNow repositions the clock at t, which may be earlier than the
// current reading. Only the simulated-thread multiplexer uses this:
// threads sharing one rank each carry their own virtual timeline, and
// a baton handoff restores the incoming thread's saved time before it
// runs. Everything else must use Advance/AdvanceTo, which preserve
// monotonicity.
func (c *Clock) SetNow(t Time) { c.now = t }

// Stopwatch measures a span of virtual time on one clock, mirroring the
// System.nanoTime() bracketing in OMB-J's benchmark loops.
type Stopwatch struct {
	c     *Clock
	start Time
}

// StartStopwatch begins timing on clock c.
func StartStopwatch(c *Clock) Stopwatch { return Stopwatch{c: c, start: c.Now()} }

// Elapsed reports the virtual time accumulated since the stopwatch
// started.
func (s Stopwatch) Elapsed() Duration { return s.c.Now().Sub(s.start) }
