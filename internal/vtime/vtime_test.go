package vtime

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if got := c.Now(); got != Time(5*Microsecond) {
		t.Fatalf("Now() = %v, want 5us", got)
	}
	c.Advance(-Microsecond)
	if got := c.Now(); got != Time(5*Microsecond) {
		t.Fatalf("negative Advance moved the clock: %v", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10 * Nanosecond)
	c.AdvanceTo(Time(3 * Nanosecond)) // in the past: no-op
	if got := c.Now(); got != Time(10*Nanosecond) {
		t.Fatalf("AdvanceTo into the past moved the clock: %v", got)
	}
	c.AdvanceTo(Time(25 * Nanosecond))
	if got := c.Now(); got != Time(25*Nanosecond) {
		t.Fatalf("AdvanceTo = %v, want 25ns", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

func TestPerByte(t *testing.T) {
	// 1 GiB/s: one byte costs ~0.93 ns.
	d := PerByte(1<<30, 1<<30)
	if d != Second {
		t.Fatalf("PerByte(1GiB @ 1GiB/s) = %v, want 1s", d)
	}
	if PerByte(0, 1e9) != 0 {
		t.Fatal("PerByte(0) != 0")
	}
	if PerByte(-5, 1e9) != 0 {
		t.Fatal("PerByte(negative) != 0")
	}
	if PerByte(100, 0) != 0 {
		t.Fatal("PerByte with zero rate should be 0, not a division panic")
	}
}

func TestPerElement(t *testing.T) {
	if got := PerElement(100, 3*Nanosecond); got != 300*Nanosecond {
		t.Fatalf("PerElement = %v, want 300ns", got)
	}
	if PerElement(-1, Nanosecond) != 0 {
		t.Fatal("PerElement(negative) != 0")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	d := Micros(2.5)
	if d != 2500*Nanosecond {
		t.Fatalf("Micros(2.5) = %v", d)
	}
	if d.Micros() != 2.5 {
		t.Fatalf("Micros() = %v, want 2.5", d.Micros())
	}
	if Nanos(1.5) != 1500*Picosecond {
		t.Fatalf("Nanos(1.5) = %v", Nanos(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatalf("Seconds() = %v", (2 * Second).Seconds())
	}
}

func TestMax(t *testing.T) {
	if Max(Time(3), Time(7)) != Time(7) || Max(Time(7), Time(3)) != Time(7) {
		t.Fatal("Max broken")
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	sw := StartStopwatch(c)
	c.Advance(42 * Microsecond)
	if got := sw.Elapsed(); got != 42*Microsecond {
		t.Fatalf("Elapsed = %v, want 42us", got)
	}
}

// Property: a clock never moves backwards under any interleaving of
// Advance and AdvanceTo.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []int64) bool {
		c := NewClock()
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(Duration(s % (1 << 40)))
			} else {
				c.AdvanceTo(Time(s % (1 << 40)))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Time.Add/Sub round-trip.
func TestAddSubProperty(t *testing.T) {
	f := func(base int64, d int64) bool {
		tm := Time(base % (1 << 50))
		dd := Duration(d % (1 << 50))
		return tm.Add(dd).Sub(tm) == dd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PerByte is monotonic in n for a fixed positive rate.
func TestPerByteMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int(a%(1<<26)), int(b%(1<<26))
		if x > y {
			x, y = y, x
		}
		return PerByte(x, 12.5e9) <= PerByte(y, 12.5e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
