package mv2j_test

// Benchmarks for the forward-looking extensions beyond the paper's
// prototype scope: one-sided operations (OMB parity) and non-blocking
// collectives (MPI 3.0), including the communication/compute overlap
// they exist to provide.

import (
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/omb"
	"mv2j/internal/profile"
	"mv2j/internal/vtime"
)

func BenchmarkOneSidedLatency(b *testing.B) {
	o := benchOpts(1, 64<<10)
	var putUs, getUs, accUs float64
	for i := 0; i < b.N; i++ {
		put := mustRun(b, "put", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o))
		get := mustRun(b, "get", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o))
		acc := mustRun(b, "acc", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o))
		putUs = at(put, 8).LatencyUs
		getUs = at(get, 8).LatencyUs
		accUs = at(acc, 8).LatencyUs
	}
	b.ReportMetric(putUs, "put-8B-us")
	b.ReportMetric(getUs, "get-8B-us")
	b.ReportMetric(accUs, "acc-8B-us")
}

// BenchmarkNonBlockingOverlap measures how much of a bcast's cost an
// Ibcast hides behind compute, per rank class.
func BenchmarkNonBlockingOverlap(b *testing.B) {
	prof := profile.MVAPICH2()
	// Compute comparable to the message latency, and a per-iteration
	// barrier so the root cannot run ahead and pre-deliver — otherwise
	// there is nothing left to hide.
	const computeUs = 5.0
	var blockingUs, overlappedUs float64
	run := func(nonBlocking bool) float64 {
		var remote float64
		err := core.Run(core.Config{Nodes: 2, PPN: 1, Lib: prof, Flavor: core.MVAPICH2J},
			func(mpi *core.MPI) error {
				world := mpi.CommWorld()
				buf := mpi.JVM().MustAllocateDirect(8192)
				var total vtime.Duration
				const iters = 20
				for k := 0; k < iters; k++ {
					if err := world.Barrier(); err != nil {
						return err
					}
					sw := vtime.StartStopwatch(mpi.Clock())
					if nonBlocking {
						req, err := world.Ibcast(buf, 8192, core.BYTE, 0)
						if err != nil {
							return err
						}
						if world.Rank() == 1 {
							mpi.Clock().Advance(vtime.Micros(computeUs))
						}
						if err := req.Wait(); err != nil {
							return err
						}
					} else {
						if err := world.Bcast(buf, 8192, core.BYTE, 0); err != nil {
							return err
						}
						if world.Rank() == 1 {
							mpi.Clock().Advance(vtime.Micros(computeUs))
						}
					}
					total += sw.Elapsed()
				}
				if world.Rank() == 1 {
					remote = total.Micros() / iters
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return remote
	}
	for i := 0; i < b.N; i++ {
		blockingUs = run(false)
		overlappedUs = run(true)
	}
	b.ReportMetric(blockingUs, "bcast+compute-us")
	b.ReportMetric(overlappedUs, "ibcast-overlap-us")
	b.ReportMetric(blockingUs-overlappedUs, "hidden-us")
}

// BenchmarkRMAVsSendRecv compares a fence-bounded put epoch against
// the equivalent two-sided exchange at an eager-sized payload (512 B)
// and an RDMA-sized one (512 KiB). The sweep demonstrates the protocol
// crossover the one-sided rebase exists to expose: the small exchange
// is cheaper two-sided (the epoch synchronisation dwarfs the payload),
// while the large one is cheaper one-sided — the window's standing
// registration plus direct placement beat the per-message rendezvous
// round trip. A warm-up epoch precedes each measurement so first-touch
// registration charges don't pollute the per-transfer numbers.
func BenchmarkRMAVsSendRecv(b *testing.B) {
	prof := profile.MVAPICH2()
	sizes := []struct {
		name  string
		bytes int
	}{{"512B", 512}, {"512KiB", 512 << 10}}
	for _, sz := range sizes {
		var putUs, sendUs float64
		for i := 0; i < b.N; i++ {
			err := core.Run(core.Config{Nodes: 2, PPN: 1, Lib: prof, Flavor: core.MVAPICH2J},
				func(mpi *core.MPI) error {
					world := mpi.CommWorld()
					exposed := mpi.JVM().MustAllocateDirect(sz.bytes)
					win, err := world.WinCreate(exposed)
					if err != nil {
						return err
					}
					payload := mpi.JVM().MustAllocateDirect(sz.bytes)
					const iters = 20

					// Warm-up: one put epoch and one exchange pay the
					// cold registration costs for both variants.
					if world.Rank() == 0 {
						if err := win.Put(payload, sz.bytes, core.BYTE, 1, 0); err != nil {
							return err
						}
					}
					if err := win.Fence(); err != nil {
						return err
					}
					if world.Rank() == 0 {
						if err := world.Send(payload, sz.bytes, core.BYTE, 1, 0); err != nil {
							return err
						}
					} else if _, err := world.Recv(payload, sz.bytes, core.BYTE, 0, 0); err != nil {
						return err
					}

					// One fence closes the whole put window (the OSU
					// osu_put_bw epoch shape), amortising the epoch
					// synchronisation the way real one-sided codes do.
					sw := vtime.StartStopwatch(mpi.Clock())
					for k := 0; k < iters; k++ {
						if world.Rank() == 0 {
							if err := win.Put(payload, sz.bytes, core.BYTE, 1, 0); err != nil {
								return err
							}
						}
					}
					if err := win.Fence(); err != nil {
						return err
					}
					if world.Rank() == 0 {
						putUs = sw.Elapsed().Micros() / iters
					}

					sw = vtime.StartStopwatch(mpi.Clock())
					for k := 0; k < iters; k++ {
						if world.Rank() == 0 {
							if err := world.Send(payload, sz.bytes, core.BYTE, 1, 0); err != nil {
								return err
							}
						} else {
							if _, err := world.Recv(payload, sz.bytes, core.BYTE, 0, 0); err != nil {
								return err
							}
						}
					}
					if world.Rank() == 0 {
						sendUs = sw.Elapsed().Micros() / iters
					}
					_ = jvm.Byte
					return win.Free()
				})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(putUs, "put+fence-"+sz.name+"-us")
		b.ReportMetric(sendUs, "send/recv-"+sz.name+"-us")
	}
}
