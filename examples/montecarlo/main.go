// Montecarlo: π estimation by Monte Carlo sampling, the textbook
// Reduce workload. Each rank draws deterministic pseudo-random points
// in the unit square, counts hits inside the quarter circle, and
// rank 0 reduces the hit counts. The example exercises direct
// ByteBuffers end-to-end (allocate, put, reduce, get).
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const (
	samplesPerRank = 200000
	nodes          = 4
	ppn            = 4
)

func main() {
	var mu sync.Mutex
	var pi float64

	cfg := core.Config{
		Nodes: nodes, PPN: ppn,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		me := world.Rank()

		// Deterministic per-rank xorshift stream.
		state := uint64(me)*0x9E3779B97F4A7C15 + 0x123456789
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state>>11) / float64(1<<53)
		}

		hits := int64(0)
		for i := 0; i < samplesPerRank; i++ {
			x, y := next(), next()
			if x*x+y*y <= 1 {
				hits++
			}
		}

		// Reduce the counts through direct ByteBuffers.
		send := mpi.JVM().MustAllocateDirect(8)
		send.SetOrder(jvm.LittleEndian)
		send.PutIntKindAt(jvm.Long, 0, hits)
		var recv *jvm.ByteBuffer
		var recvAny any
		if me == 0 {
			recv = mpi.JVM().MustAllocateDirect(8)
			recv.SetOrder(jvm.LittleEndian)
			recvAny = recv
		}
		if err := world.Reduce(send, recvAny, 1, core.LONG, core.SUM, 0); err != nil {
			return err
		}
		if me == 0 {
			total := recv.IntKindAt(jvm.Long, 0)
			estimate := 4 * float64(total) / float64(samplesPerRank*nodes*ppn)
			mu.Lock()
			pi = estimate
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ~= %.6f over %d samples on %d ranks (error %.2e)\n",
		pi, samplesPerRank*nodes*ppn, nodes*ppn, math.Abs(pi-math.Pi))
	if math.Abs(pi-math.Pi) > 0.01 {
		log.Fatalf("estimate too far from pi")
	}
}
