// Quickstart: the smallest complete MVAPICH2-J program. It launches a
// simulated 2-node job, exchanges greetings over point-to-point calls,
// then runs a broadcast and a reduction — the bindings' Java-style API
// end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

func main() {
	var mu sync.Mutex // serialises printing across rank goroutines

	cfg := core.Config{
		Nodes:  2,
		PPN:    2,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
	}

	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		rank, size := world.Rank(), world.Size()

		// Point-to-point: everyone sends a token to rank 0.
		if rank == 0 {
			for i := 1; i < size; i++ {
				msg := mpi.JVM().MustArray(jvm.Int, 1)
				st, err := world.Recv(msg, 1, core.INT, core.AnySource, 0)
				if err != nil {
					return err
				}
				mu.Lock()
				fmt.Printf("rank 0 got token %d from rank %d\n", msg.Int(0), st.Source)
				mu.Unlock()
			}
		} else {
			msg := mpi.JVM().MustArray(jvm.Int, 1)
			msg.SetInt(0, int64(rank*rank))
			if err := world.Send(msg, 1, core.INT, 0, 0); err != nil {
				return err
			}
		}

		// Broadcast a direct ByteBuffer from rank 0.
		buf := mpi.JVM().MustAllocateDirect(8)
		if rank == 0 {
			buf.PutFloatKindAt(jvm.Double, 0, 3.14159)
		}
		if err := world.Bcast(buf, 1, core.DOUBLE, 0); err != nil {
			return err
		}

		// Allreduce: sum of ranks.
		send := mpi.JVM().MustArray(jvm.Long, 1)
		recv := mpi.JVM().MustArray(jvm.Long, 1)
		send.SetInt(0, int64(rank))
		if err := world.Allreduce(send, recv, 1, core.LONG, core.SUM); err != nil {
			return err
		}

		mu.Lock()
		fmt.Printf("rank %d/%d: bcast=%.5f, sum(ranks)=%d, virtual time=%v\n",
			rank, size, buf.FloatKindAt(jvm.Double, 0), recv.Int(0), mpi.Clock().Now())
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
