// Ftshrink: shrink-and-continue under a rank crash. Four ranks run an
// iterative allreduce; a fault plan kills rank 2 partway through. With
// Config.FT enabled the crash surfaces as an ErrProcFailed-class error
// instead of aborting: the survivors revoke the world communicator,
// shrink it, agree on the slowest member's iteration (the rollback
// point), and finish the loop on three ranks — the ULFM recipe
// (revoke / shrink / agree) on the simulated cluster.
//
//	go run ./examples/ftshrink
package main

import (
	"fmt"
	"log"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/faults"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const iters = 8

var stdout sync.Mutex

func say(format string, args ...any) {
	stdout.Lock()
	defer stdout.Unlock()
	fmt.Printf(format+"\n", args...)
}

func main() {
	plan, err := faults.ParseSpec("crash=2@60us")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Nodes: 1, PPN: 4,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
		Faults: plan,
		FT:     true,
	}
	fmt.Printf("running %d iterations on %d ranks; rank 2 crashes at 60us (virtual)\n\n",
		iters, cfg.Nodes*cfg.PPN)
	if err := core.Run(cfg, body); err != nil {
		log.Fatal(err)
	}
}

func body(mpi *core.MPI) error {
	world := mpi.CommWorld()
	me := world.Rank()
	comm := world
	send := mpi.JVM().MustArray(jvm.Long, 1)
	recv := mpi.JVM().MustArray(jvm.Long, 1)

	for iter := 0; iter < iters; {
		send.SetInt(0, int64(me+1))
		err := comm.Allreduce(send, recv, 1, core.LONG, core.SUM)
		if err == nil {
			if comm.Rank() == 0 {
				say("iter %d: sum of (rank+1) over %d ranks = %d (t=%v)",
					iter, comm.Size(), recv.Int(0), mpi.Clock().Now())
			}
			iter++
			continue
		}
		if !core.IsFailure(err) {
			return err
		}
		say("rank %d: iteration %d failed: %v", me, iter, err)

		// The ULFM recovery sequence. Revoke flushes every member out
		// of the broken collective; AgreeShrink agrees on the failed
		// set and hands back the survivors' communicator; the MIN
		// allreduce picks the common rollback iteration.
		for {
			if err := comm.Revoke(); err != nil {
				return err
			}
			_, nc, failed, aerr := comm.AgreeShrink(^uint64(0))
			if aerr != nil {
				if core.IsFailure(aerr) {
					continue
				}
				return aerr
			}
			send.SetInt(0, int64(iter))
			if merr := nc.Allreduce(send, recv, 1, core.LONG, core.MIN); merr != nil {
				if core.IsFailure(merr) {
					comm = nc
					continue
				}
				return merr
			}
			say("rank %d: shrank %d -> %d ranks (lost world ranks %v), rolling back to iteration %d",
				me, comm.Size(), nc.Size(), failed, recv.Int(0))
			comm, iter = nc, int(recv.Int(0))
			break
		}
	}
	if comm.Rank() == 0 {
		say("\ndone on %d survivors at t=%v; world reports failed ranks %v",
			comm.Size(), mpi.Clock().Now(), world.FailedMembers())
	}
	return nil
}
