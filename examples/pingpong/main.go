// Pingpong: measures point-to-point latency between two ranks on
// different nodes, comparing the two buffer kinds the bindings accept
// (direct ByteBuffers vs Java arrays) — a miniature of the paper's
// Figs. 9/10 — and prints the per-size results.
//
//	go run ./examples/pingpong
package main

import (
	"fmt"
	"log"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
	"mv2j/internal/vtime"
)

const (
	maxSize = 1 << 20
	iters   = 40
)

func main() {
	bufferUs, err := run(core.MVAPICH2J, useBuffers)
	if err != nil {
		log.Fatal(err)
	}
	arrayUs, err := run(core.MVAPICH2J, useArrays)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %18s %18s\n", "size(B)", "buffer latency(us)", "arrays latency(us)")
	for size := 1; size <= maxSize; size *= 4 {
		fmt.Printf("%-10d %18.2f %18.2f\n", size, bufferUs[size], arrayUs[size])
	}
}

type kind int

const (
	useBuffers kind = iota
	useArrays
)

func run(flavor core.Flavor, k kind) (map[int]float64, error) {
	var mu sync.Mutex
	out := map[int]float64{}
	cfg := core.Config{
		Nodes: 2, PPN: 1,
		Lib:      profile.MVAPICH2(),
		Flavor:   flavor,
		HeapSize: 16 << 20, ArenaSize: 16 << 20,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		me := world.Rank()
		other := 1 - me

		var buf any
		if k == useBuffers {
			buf = mpi.JVM().MustAllocateDirect(maxSize)
		} else {
			buf = mpi.JVM().MustArray(jvm.Byte, maxSize)
		}

		for size := 1; size <= maxSize; size *= 4 {
			sw := vtime.StartStopwatch(mpi.Clock())
			for i := 0; i < iters; i++ {
				if me == 0 {
					if err := world.Send(buf, size, core.BYTE, other, 0); err != nil {
						return err
					}
					if _, err := world.Recv(buf, size, core.BYTE, other, 0); err != nil {
						return err
					}
				} else {
					if _, err := world.Recv(buf, size, core.BYTE, other, 0); err != nil {
						return err
					}
					if err := world.Send(buf, size, core.BYTE, other, 0); err != nil {
						return err
					}
				}
			}
			if me == 0 {
				mu.Lock()
				out[size] = sw.Elapsed().Micros() / (2 * iters)
				mu.Unlock()
			}
			if err := world.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	return out, err
}
