// Stencil: a 2-D Jacobi heat-diffusion solver on a 1-D domain
// decomposition — the classic halo-exchange workload Java HPC papers
// motivate. Each rank owns a band of rows stored column-major, so a
// grid row is NOT contiguous in memory: it is a strided slice, one
// double every (rows+2) elements. The halo exchange describes that
// layout to MPI with a committed TypeVector(DOUBLE, n, 1, rows+2)
// instead of hand-packing — the derived-datatype path streams the
// strided row through the typed pack engine (and, for halos large
// enough to cross the rendezvous threshold, gathers it straight out of
// the user array with no intermediate pack buffer).
//
// The run reports the final checksum and cross-checks it against a
// single-rank reference solve.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const (
	gridN  = 96 // global rows and columns (interior + boundary)
	ranks  = 4
	sweeps = 60
)

func main() {
	parallel, err := solve(gridN, 2, ranks/2, sweeps, 0)
	if err != nil {
		log.Fatal(err)
	}
	reference := solveSerial(gridN, sweeps)
	fmt.Printf("parallel checksum  = %.6f\n", parallel)
	fmt.Printf("reference checksum = %.6f\n", reference)
	if math.Abs(parallel-reference) > 1e-9 {
		log.Fatalf("MISMATCH: parallel solve diverged from the serial reference")
	}
	fmt.Println("parallel solve matches the serial reference")
}

// heat sets the boundary condition: hot west edge, cold elsewhere.
func heat(n, r, c int) float64 {
	if c == 0 {
		return 100
	}
	if r == 0 || r == n-1 || c == n-1 {
		return 0
	}
	return 0
}

// solve runs the distributed Jacobi solve on an n x n grid over
// nodes x ppn ranks (n must divide evenly by the rank count) for the
// given number of sweeps, and returns the global checksum. workers
// sets the scale-out engine's pool width (0 = GOMAXPROCS).
func solve(n, nodes, ppn, sweeps, workers int) (float64, error) {
	var mu sync.Mutex
	checksum := 0.0
	cfg := core.Config{
		Nodes: nodes, PPN: ppn,
		Lib:           profile.MVAPICH2(),
		Flavor:        core.MVAPICH2J,
		EngineWorkers: workers,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		me, p := world.Rank(), world.Size()
		rows := n / p // band height (n divisible by p)
		lo := me * rows

		// Local band with one halo row above and below, stored
		// COLUMN-major: element (r, c) lives at c*(rows+2) + (r+1), so
		// columns are contiguous and grid rows are strided.
		lda := rows + 2
		cur := mpi.JVM().MustArray(jvm.Double, lda*n)
		next := mpi.JVM().MustArray(jvm.Double, lda*n)
		idx := func(r, c int) int { return c*lda + (r + 1) }
		for r := 0; r < rows; r++ {
			for c := 0; c < n; c++ {
				cur.SetFloat(idx(r, c), heat(n, lo+r, c))
				next.SetFloat(idx(r, c), heat(n, lo+r, c))
			}
		}

		// One grid row as a datatype: n singleton blocks, one every lda
		// elements. Row r of the band starts at base-element offset
		// idx(r, 0), so SendRange/RecvRange address any row with the
		// same committed type.
		rowType := core.TypeVector(core.DOUBLE, n, 1, lda)
		rowType.Commit()
		defer rowType.Free()

		up, down := me-1, me+1
		for s := 0; s < sweeps; s++ {
			// Halo exchange: send the first owned row up / last owned
			// row down, receive into the halo rows. Each message is one
			// rowType element gathered from / scattered into the strided
			// row in place.
			if up >= 0 {
				if err := world.SendRange(cur, idx(0, 0), 1, rowType, up, 10); err != nil {
					return err
				}
				if _, err := world.RecvRange(cur, idx(-1, 0), 1, rowType, up, 11); err != nil {
					return err
				}
			}
			if down < p {
				if _, err := world.RecvRange(cur, idx(rows, 0), 1, rowType, down, 10); err != nil {
					return err
				}
				if err := world.SendRange(cur, idx(rows-1, 0), 1, rowType, down, 11); err != nil {
					return err
				}
			}

			// Jacobi update on interior points of the band.
			for r := 0; r < rows; r++ {
				g := lo + r
				for c := 0; c < n; c++ {
					if g == 0 || g == n-1 || c == 0 || c == n-1 {
						next.SetFloat(idx(r, c), heat(n, g, c))
						continue
					}
					v := 0.25 * (cur.Float(idx(r-1, c)) + cur.Float(idx(r+1, c)) +
						cur.Float(idx(r, c-1)) + cur.Float(idx(r, c+1)))
					next.SetFloat(idx(r, c), v)
				}
			}
			cur, next = next, cur
		}

		// Global checksum of owned cells.
		local := mpi.JVM().MustArray(jvm.Double, 1)
		sum := 0.0
		for r := 0; r < rows; r++ {
			for c := 0; c < n; c++ {
				sum += cur.Float(idx(r, c))
			}
		}
		local.SetFloat(0, sum)
		total := mpi.JVM().MustArray(jvm.Double, 1)
		if err := world.Allreduce(local, total, 1, core.DOUBLE, core.SUM); err != nil {
			return err
		}
		if me == 0 {
			mu.Lock()
			checksum = total.Float(0)
			mu.Unlock()
		}
		return nil
	})
	return checksum, err
}

// solveSerial is the single-process reference.
func solveSerial(n, sweeps int) float64 {
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			cur[r*n+c] = heat(n, r, c)
			next[r*n+c] = heat(n, r, c)
		}
	}
	for s := 0; s < sweeps; s++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				next[r*n+c] = 0.25 * (cur[(r-1)*n+c] + cur[(r+1)*n+c] +
					cur[r*n+c-1] + cur[r*n+c+1])
			}
		}
		cur, next = next, cur
	}
	sum := 0.0
	for _, v := range cur {
		sum += v
	}
	return sum
}
