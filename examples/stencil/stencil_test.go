package main

import (
	"math"
	"testing"
)

// TestStencilSmall pins the example's shipped configuration: the
// distributed solve matches the serial reference bit-for-bit on the
// checksum.
func TestStencilSmall(t *testing.T) {
	got, err := solve(gridN, 2, ranks/2, sweeps, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := solveSerial(gridN, sweeps)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("parallel checksum %.9f != serial reference %.9f", got, want)
	}
}

// TestStencil1024 is the ISSUE's scale target: the halo-exchange solve
// at np=1024 (32 nodes x 32 ppn, 2 rows per rank on a 2048-wide grid)
// completes in CI-feasible wall time under the worker pool and still
// matches the serial reference.
func TestStencil1024(t *testing.T) {
	if testing.Short() {
		t.Skip("np=1024 job in -short mode")
	}
	const n, sw = 2048, 4
	got, err := solve(n, 32, 32, sw, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := solveSerial(n, sw)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("parallel checksum %.9f != serial reference %.9f", got, want)
	}
}

// TestStencilWorkerWidths pins the determinism contract end-to-end at
// the example level: serial (workers=1) and pooled (workers=8) engines
// produce the identical checksum.
func TestStencilWorkerWidths(t *testing.T) {
	serial, err := solve(gridN, 2, ranks/2, sweeps, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := solve(gridN, 2, ranks/2, sweeps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != pooled {
		t.Fatalf("workers=1 checksum %.12f != workers=8 checksum %.12f", serial, pooled)
	}
}
