// Lattice: a 2-D domain decomposition showcase of the extended API —
// Cartesian communicator (CreateCart/Shift with ProcNull edges),
// branch-free halo exchange through the offset extension (contiguous
// rows) and a Vector datatype (strided columns), and an
// Allreduce-driven checksum. The kernel is a 2-D Jacobi iteration on a
// checkerboard of rank tiles; the result is verified against a serial
// solve.
//
//	go run ./examples/lattice
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const (
	tiles  = 2  // 2x2 rank grid
	tileN  = 24 // interior cells per tile edge
	global = tiles * tileN
	sweeps = 40
)

func boundary(r, c int) float64 {
	switch {
	case r == 0:
		return 50
	case c == 0:
		return 100
	case r == global-1 || c == global-1:
		return 0
	default:
		return 0
	}
}

func main() {
	par, err := parallel()
	if err != nil {
		log.Fatal(err)
	}
	ser := serial()
	fmt.Printf("parallel checksum  = %.9f\n", par)
	fmt.Printf("reference checksum = %.9f\n", ser)
	if math.Abs(par-ser) > 1e-9 {
		log.Fatal("2-D decomposition diverged from the serial reference")
	}
	fmt.Println("2-D lattice solve matches the serial reference")
}

func parallel() (float64, error) {
	var mu sync.Mutex
	var checksum float64
	cfg := core.Config{
		Nodes: 2, PPN: 2,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		cart, err := world.CreateCart([]int{tiles, tiles}, []bool{false, false})
		if err != nil {
			return err
		}
		coords := cart.Coords()
		rowLo, colLo := coords[0]*tileN, coords[1]*tileN

		// Tile with a one-cell halo ring: (tileN+2)^2 doubles.
		const w = tileN + 2
		cur := mpi.JVM().MustArray(jvm.Double, w*w)
		next := mpi.JVM().MustArray(jvm.Double, w*w)
		at := func(r, c int) int { return (r+1)*w + (c + 1) }
		set := func(a jvm.Array, r, c int, v float64) { a.SetFloat(at(r, c), v) }
		for r := 0; r < tileN; r++ {
			for c := 0; c < tileN; c++ {
				set(cur, r, c, boundary(rowLo+r, colLo+c))
				set(next, r, c, boundary(rowLo+r, colLo+c))
			}
		}

		up, down, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		left, right, err := cart.Shift(1, 1)
		if err != nil {
			return err
		}

		// Column halos are strided: vector type over the tile width.
		colType, err := core.Vector(core.DOUBLE, tileN, 1, w)
		if err != nil {
			return err
		}

		// Halo exchange each sweep via the offset extension: rows stage
		// straight out of the tile (contiguous), columns through the
		// vector type. ProcNull edges make the calls branch-free.
		exchange := func() error {
			// Rows (contiguous): up and down.
			if err := cart.SendRange(cur, at(0, 0), tileN, core.DOUBLE, up, 1); err != nil {
				return err
			}
			if _, err := cart.RecvRange(cur, at(tileN, 0), tileN, core.DOUBLE, down, 1); err != nil {
				return err
			}
			if err := cart.SendRange(cur, at(tileN-1, 0), tileN, core.DOUBLE, down, 2); err != nil {
				return err
			}
			if _, err := cart.RecvRange(cur, at(-1, 0), tileN, core.DOUBLE, up, 2); err != nil {
				return err
			}
			// Columns (strided): left and right via the vector type.
			if err := cart.SendRange(cur, at(0, 0), 1, colType, left, 3); err != nil {
				return err
			}
			if _, err := cart.RecvRange(cur, at(0, tileN), 1, colType, right, 3); err != nil {
				return err
			}
			if err := cart.SendRange(cur, at(0, tileN-1), 1, colType, right, 4); err != nil {
				return err
			}
			if _, err := cart.RecvRange(cur, at(0, -1), 1, colType, left, 4); err != nil {
				return err
			}
			return nil
		}

		for s := 0; s < sweeps; s++ {
			if err := exchange(); err != nil {
				return err
			}
			for r := 0; r < tileN; r++ {
				gr := rowLo + r
				for c := 0; c < tileN; c++ {
					gc := colLo + c
					if gr == 0 || gr == global-1 || gc == 0 || gc == global-1 {
						set(next, r, c, boundary(gr, gc))
						continue
					}
					v := 0.25 * (cur.Float(at(r-1, c)) + cur.Float(at(r+1, c)) +
						cur.Float(at(r, c-1)) + cur.Float(at(r, c+1)))
					set(next, r, c, v)
				}
			}
			cur, next = next, cur
		}

		// Global checksum.
		local := mpi.JVM().MustArray(jvm.Double, 1)
		sum := 0.0
		for r := 0; r < tileN; r++ {
			for c := 0; c < tileN; c++ {
				sum += cur.Float(at(r, c))
			}
		}
		local.SetFloat(0, sum)
		total := mpi.JVM().MustArray(jvm.Double, 1)
		if err := cart.Allreduce(local, total, 1, core.DOUBLE, core.SUM); err != nil {
			return err
		}
		if cart.Rank() == 0 {
			mu.Lock()
			checksum = total.Float(0)
			mu.Unlock()
		}
		return nil
	})
	return checksum, err
}

func serial() float64 {
	cur := make([]float64, global*global)
	next := make([]float64, global*global)
	for r := 0; r < global; r++ {
		for c := 0; c < global; c++ {
			cur[r*global+c] = boundary(r, c)
			next[r*global+c] = boundary(r, c)
		}
	}
	for s := 0; s < sweeps; s++ {
		for r := 1; r < global-1; r++ {
			for c := 1; c < global-1; c++ {
				next[r*global+c] = 0.25 * (cur[(r-1)*global+c] + cur[(r+1)*global+c] +
					cur[r*global+c-1] + cur[r*global+c+1])
			}
		}
		cur, next = next, cur
	}
	sum := 0.0
	for _, v := range cur {
		sum += v
	}
	return sum
}
