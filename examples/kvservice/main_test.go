package main

import "testing"

// TestKVServiceExample runs a scaled-down epoch twice: the virtual
// rate must be deterministic, the incast must demote eager sends,
// and the thread scheduler must actually have run.
func TestKVServiceExample(t *testing.T) {
	p := params{clients: 2048, nodes: 1, ppn: 4, threads: 2,
		iters: 1, window: 32, credits: 8, queueBytes: 128}
	row0, hs, err := run(p)
	if err != nil {
		t.Fatal(err)
	}
	if row0.Size != 32 || row0.MBps <= 0 {
		t.Fatalf("bad result row: %+v", row0)
	}
	if hs.Flow.DemotedSends == 0 {
		t.Errorf("tight-queue incast demoted nothing: %+v", hs.Flow)
	}
	if hs.Threads.Groups == 0 || hs.Threads.Handoffs == 0 {
		t.Errorf("thread scheduler unused: %+v", hs.Threads)
	}
	row1, _, err := run(p)
	if err != nil {
		t.Fatal(err)
	}
	if row0 != row1 {
		t.Errorf("nondeterministic example: %+v vs %+v", row0, row1)
	}
}
