// Kvservice: a million simulated clients hammering an MPI-backed
// key-value/messaging tier under MPI_THREAD_MULTIPLE — the paper's
// motivating deployment shape for Java bindings in a service stack.
// Client shards are multiplexed onto the client half of the job (far
// more logical clients than ranks), request/reply channels are
// tag-partitioned per server thread and per client, and a hot-key
// skew turns server rank 0 into an incast victim: with eager credits
// on and a bounded unexpected queue, the pile-up demotes eager
// requests to rendezvous, which the run report counts.
//
//	go run ./examples/kvservice
//	go run ./examples/kvservice -clients 4000000 -nodes 4 -ppn 8 -threads 8
package main

import (
	"flag"
	"fmt"
	"log"

	"mv2j/internal/core"
	"mv2j/internal/nativempi"
	"mv2j/internal/omb"
	"mv2j/internal/profile"
)

type params struct {
	clients, nodes, ppn, threads, iters, window int
	credits                                     int
	queueBytes                                  int64
}

func main() {
	var p params
	flag.IntVar(&p.clients, "clients", 1_000_000, "simulated client population")
	flag.IntVar(&p.nodes, "nodes", 2, "simulated nodes")
	flag.IntVar(&p.ppn, "ppn", 4, "ranks per node (half serve, half host clients)")
	flag.IntVar(&p.threads, "threads", 4, "simulated threads per rank (MPI_THREAD_MULTIPLE)")
	flag.IntVar(&p.iters, "iters", 1, "request passes over the client population")
	flag.IntVar(&p.window, "window", 64, "in-flight request/reply pairs per client lane")
	flag.IntVar(&p.credits, "credits", 8, "per-peer eager credits (0 = flow control off)")
	flag.Int64Var(&p.queueBytes, "queue-bytes", 256, "server unexpected-queue bound; past half, eager demotes to rendezvous")
	flag.Parse()

	row, hs, err := run(p)
	if err != nil {
		log.Fatal(err)
	}
	np := p.nodes * p.ppn
	fmt.Printf("kvservice: %d clients on %d ranks (%d serve) x %d threads\n",
		p.clients, np, np/2, p.threads)
	fmt.Printf("  aggregate service rate: %.0f requests/s (%d-byte messages)\n", row.MBps, row.Size)
	fmt.Printf("  incast flow control:    %d eager sends demoted to rendezvous, %d credit parks\n",
		hs.Flow.DemotedSends, hs.Flow.RNRParks)
	fmt.Printf("  thread scheduler:       %d thread groups, %d baton handoffs\n",
		hs.Threads.Groups, hs.Threads.Handoffs)
}

// run executes one service epoch and returns the rank-0 result row
// plus the world's host-side counters.
func run(p params) (omb.Result, nativempi.HostStats, error) {
	prof := profile.MVAPICH2()
	if p.credits > 0 {
		prof.EagerCredits = p.credits
		prof.UnexpectedQueueBytes = p.queueBytes
	}
	var hs nativempi.HostStats
	cfg := omb.Config{
		Core: core.Config{Nodes: p.nodes, PPN: p.ppn, Lib: prof,
			Flavor: core.MVAPICH2J, HostStats: &hs},
		Mode: omb.ModeBuffer,
		Opts: omb.Options{Iters: p.iters, Window: p.window,
			Threads: p.threads, Clients: p.clients},
	}
	rows, err := omb.RunBenchmark("kvservice", cfg)
	if err != nil {
		return omb.Result{}, hs, err
	}
	return rows[0], hs, nil
}
