package main

import "testing"

// TestTransposeShapes runs the indexed-landing transpose on the
// shared-memory pair (eager-tier typed engine) and across two nodes
// (the inter-node channel), at the shipped size and an odd one that
// doesn't divide any pool bucket evenly.
func TestTransposeShapes(t *testing.T) {
	for _, tc := range []struct {
		n, nodes, ppn int
	}{
		{matrixN, 1, 2},
		{60, 1, 2},
		{64, 2, 1},
	} {
		if err := transpose(tc.n, tc.nodes, tc.ppn, 0); err != nil {
			t.Errorf("n=%d nodes=%d ppn=%d: %v", tc.n, tc.nodes, tc.ppn, err)
		}
	}
}

// TestTransposeWorkerWidths pins determinism: the verification (which
// checks every element) must pass identically under the serial and
// pooled engines.
func TestTransposeWorkerWidths(t *testing.T) {
	for _, workers := range []int{1, 8} {
		if err := transpose(matrixN, 1, 2, workers); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}
