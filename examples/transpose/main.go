// Transpose: a distributed matrix transpose that receives rows as
// columns — the canonical derived-datatype trick. Rank 0 owns an
// n x n DOUBLE matrix in row-major order and streams it out one
// contiguous row at a time; rank 1 receives every row with a committed
// TypeIndexed whose displacements are {0, n, 2n, ...}, so row i lands
// scattered down column i of the destination and the transpose
// materialises with no application-level shuffle at all. (The same
// layout is expressible as TypeVector(DOUBLE, n, 1, n); the example
// deliberately uses the indexed constructor to exercise the
// displacement-list path.)
//
//	go run ./examples/transpose
package main

import (
	"fmt"
	"log"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const matrixN = 96

func main() {
	if err := transpose(matrixN, 1, 2, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transpose of the %dx%d matrix verified on the receiver\n", matrixN, matrixN)
}

// cell is the deterministic source matrix: A[i][j] = cell(i, j). Both
// ranks can regenerate it, so verification needs no second exchange.
func cell(n, i, j int) float64 { return float64(i*n+j) + 0.25 }

// transpose streams rank 0's n x n matrix to rank 1, landing it
// transposed via an indexed column datatype, and verifies every
// element on the receiver.
func transpose(n, nodes, ppn, workers int) error {
	cfg := core.Config{
		Nodes: nodes, PPN: ppn,
		Lib:           profile.MVAPICH2(),
		Flavor:        core.MVAPICH2J,
		EngineWorkers: workers,
	}
	return core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		if world.Size() < 2 {
			return fmt.Errorf("transpose needs at least 2 ranks")
		}
		switch world.Rank() {
		case 0:
			a := mpi.JVM().MustArray(jvm.Double, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.SetFloat(i*n+j, cell(n, i, j))
				}
			}
			for i := 0; i < n; i++ {
				if err := world.SendRange(a, i*n, n, core.DOUBLE, 1, 7); err != nil {
					return err
				}
			}
		case 1:
			b := mpi.JVM().MustArray(jvm.Double, n*n)
			// One column as a datatype: n singleton blocks displaced by
			// {0, n, 2n, ...}. Receiving at base-element offset i shifts
			// the whole pattern right, landing row i as column i.
			lens := make([]int, n)
			displs := make([]int, n)
			for k := range lens {
				lens[k] = 1
				displs[k] = k * n
			}
			colType := core.TypeIndexed(core.DOUBLE, lens, displs)
			colType.Commit()
			defer colType.Free()
			for i := 0; i < n; i++ {
				st, err := world.RecvRange(b, i, 1, colType, 0, 7)
				if err != nil {
					return err
				}
				if got, err := st.Count(colType); err != nil || got != 1 {
					return fmt.Errorf("row %d: Count = %d (%v), want 1 column element", i, got, err)
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got, want := b.Float(j*n+i), cell(n, i, j); got != want {
						return fmt.Errorf("B[%d][%d] = %v, want A[%d][%d] = %v", j, i, got, i, j, want)
					}
				}
			}
		}
		return nil
	})
}
