// Wordcount: the canonical Big Data kernel (the paper's introduction
// motivates Java HPC with Hadoop/Spark workloads), as a map-reduce
// over MPI. Each rank counts words in its shard of a synthetic corpus,
// partitions the partial counts by a word-hash, exchanges them with
// Alltoallv over Java byte arrays, and merges. The distributed tallies
// are verified against a serial count.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const (
	nodes         = 2
	ppn           = 3
	linesPerShard = 400
)

var vocabulary = []string{
	"java", "bindings", "mpi", "buffer", "array", "latency", "bandwidth",
	"broadcast", "allreduce", "rendezvous", "eager", "direct", "heap",
	"garbage", "collector", "native", "jni", "pool", "frontera",
}

// shardLine deterministically generates line l of shard s.
func shardLine(s, l int) string {
	x := uint64(s*linesPerShard+l)*2862933555777941757 + 3037000493
	var words []string
	n := int(x%7) + 3
	for i := 0; i < n; i++ {
		x = x*2862933555777941757 + 3037000493
		words = append(words, vocabulary[int(x>>33)%len(vocabulary)])
	}
	return strings.Join(words, " ")
}

func countShard(s int) map[string]int {
	counts := map[string]int{}
	for l := 0; l < linesPerShard; l++ {
		for _, w := range strings.Fields(shardLine(s, l)) {
			counts[w]++
		}
	}
	return counts
}

// owner hashes a word onto a rank.
func owner(word string, p int) int {
	h := uint32(2166136261)
	for i := 0; i < len(word); i++ {
		h = (h ^ uint32(word[i])) * 16777619
	}
	return int(h % uint32(p))
}

// encodeCounts serialises word-count pairs as
// [len:1][word][count:4le] records.
func encodeCounts(m map[string]int) []byte {
	words := make([]string, 0, len(m))
	for w := range m {
		words = append(words, w)
	}
	sort.Strings(words)
	var out []byte
	for _, w := range words {
		out = append(out, byte(len(w)))
		out = append(out, w...)
		c := m[w]
		out = append(out, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return out
}

func decodeCounts(b []byte, into map[string]int) error {
	for len(b) > 0 {
		n := int(b[0])
		if len(b) < 1+n+4 {
			return fmt.Errorf("truncated record")
		}
		w := string(b[1 : 1+n])
		c := int(b[1+n]) | int(b[2+n])<<8 | int(b[3+n])<<16 | int(b[4+n])<<24
		into[w] += c
		b = b[5+n:]
	}
	return nil
}

func main() {
	got, err := distributed()
	if err != nil {
		log.Fatal(err)
	}
	want := map[string]int{}
	for s := 0; s < nodes*ppn; s++ {
		for w, c := range countShard(s) {
			want[w] += c
		}
	}
	if len(got) != len(want) {
		log.Fatalf("vocabulary size mismatch: %d vs %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			log.Fatalf("count mismatch for %q: %d vs %d", w, got[w], c)
		}
	}
	top := make([]string, 0, len(got))
	for w := range got {
		top = append(top, w)
	}
	sort.Slice(top, func(i, j int) bool { return got[top[i]] > got[top[j]] })
	fmt.Println("top words (distributed == serial):")
	for _, w := range top[:5] {
		fmt.Printf("  %-12s %d\n", w, got[w])
	}
}

func distributed() (map[string]int, error) {
	var mu sync.Mutex
	merged := map[string]int{}
	cfg := core.Config{
		Nodes: nodes, PPN: ppn,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		p := world.Size()
		me := world.Rank()

		// Map phase: count the local shard, partition by owner.
		local := countShard(me)
		parts := make([]map[string]int, p)
		for r := range parts {
			parts[r] = map[string]int{}
		}
		for w, c := range local {
			parts[owner(w, p)][w] = c
		}

		// Serialise per-destination blocks.
		blocks := make([][]byte, p)
		sendCounts := make([]int, p)
		sendDispls := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			blocks[r] = encodeCounts(parts[r])
			sendCounts[r] = len(blocks[r])
			sendDispls[r] = total
			total += len(blocks[r])
		}
		sendArr := mpi.JVM().MustArray(jvm.Byte, max(total, 1))
		for r := 0; r < p; r++ {
			sendArr.CopyInBytes(sendDispls[r], blocks[r])
		}

		// Exchange block sizes, then the blocks.
		cntSend := mpi.JVM().MustArray(jvm.Int, p)
		cntRecv := mpi.JVM().MustArray(jvm.Int, p)
		for r := 0; r < p; r++ {
			cntSend.SetInt(r, int64(sendCounts[r]))
		}
		if err := world.Alltoall(cntSend, 1, cntRecv, 1, core.INT); err != nil {
			return err
		}
		recvCounts := make([]int, p)
		recvDispls := make([]int, p)
		rTotal := 0
		for r := 0; r < p; r++ {
			recvCounts[r] = int(cntRecv.Int(r))
			recvDispls[r] = rTotal
			rTotal += recvCounts[r]
		}
		recvArr := mpi.JVM().MustArray(jvm.Byte, max(rTotal, 1))
		if err := world.Alltoallv(sendArr, sendCounts, sendDispls,
			recvArr, recvCounts, recvDispls, core.BYTE); err != nil {
			return err
		}

		// Reduce phase: merge the records I own.
		mine := map[string]int{}
		raw := make([]byte, rTotal)
		recvArr.CopyOutBytes(0, raw)
		if err := decodeCounts(raw, mine); err != nil {
			return err
		}

		// Collect everything at rank 0 for the final report: encode my
		// tallies, Gatherv by size.
		enc := encodeCounts(mine)
		lenSend := mpi.JVM().MustArray(jvm.Int, 1)
		lenSend.SetInt(0, int64(len(enc)))
		lenAll := mpi.JVM().MustArray(jvm.Int, p)
		if err := world.Allgather(lenSend, 1, lenAll, 1, core.INT); err != nil {
			return err
		}
		gcounts := make([]int, p)
		gdispls := make([]int, p)
		gtotal := 0
		for r := 0; r < p; r++ {
			gcounts[r] = int(lenAll.Int(r))
			gdispls[r] = gtotal
			gtotal += gcounts[r]
		}
		sendEnc := mpi.JVM().MustArray(jvm.Byte, max(len(enc), 1))
		sendEnc.CopyInBytes(0, enc)
		var gatherArr jvm.Array
		var gatherAny any
		if me == 0 {
			gatherArr = mpi.JVM().MustArray(jvm.Byte, max(gtotal, 1))
			gatherAny = gatherArr
		}
		if err := world.Gatherv(sendEnc, len(enc), gatherAny, gcounts, gdispls, core.BYTE, 0); err != nil {
			return err
		}
		if me == 0 {
			all := make([]byte, gtotal)
			gatherArr.CopyOutBytes(0, all)
			out := map[string]int{}
			if err := decodeCounts(all, out); err != nil {
				return err
			}
			mu.Lock()
			merged = out
			mu.Unlock()
		}
		return nil
	})
	return merged, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
