// Kmeans: distributed k-means clustering, the allreduce-driven pattern
// of data-parallel analytics (the Big Data workloads the paper's
// introduction motivates Java HPC with). Each rank owns a shard of
// points; every iteration it assigns points to the nearest centroid
// locally, then Allreduces the per-cluster sums and counts so all
// ranks update identical centroids.
//
// A single-process reference run verifies the distributed result.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

const (
	dims      = 4
	clusters  = 3
	perRank   = 500
	nRanks    = 8
	iterLimit = 12
)

// synthPoint generates a deterministic point near one of three seeds.
func synthPoint(global int, out []float64) {
	seeds := [clusters][dims]float64{
		{0, 0, 0, 0},
		{10, 10, 10, 10},
		{-8, 6, -8, 6},
	}
	s := seeds[global%clusters]
	// Deterministic LCG jitter.
	x := uint64(global)*6364136223846793005 + 1442695040888963407
	for d := 0; d < dims; d++ {
		x = x*6364136223846793005 + 1442695040888963407
		jitter := float64(int64(x>>33)%1000)/1000.0 - 0.5
		out[d] = s[d] + jitter
	}
}

func main() {
	got, err := distributed()
	if err != nil {
		log.Fatal(err)
	}
	want := serial()
	fmt.Println("distributed centroids:")
	for c := 0; c < clusters; c++ {
		fmt.Printf("  c%d = %v\n", c, got[c])
	}
	for c := 0; c < clusters; c++ {
		for d := 0; d < dims; d++ {
			if math.Abs(got[c][d]-want[c][d]) > 1e-6 {
				log.Fatalf("centroid mismatch at c%d[%d]: %v vs %v", c, d, got[c][d], want[c][d])
			}
		}
	}
	fmt.Println("distributed result matches the serial reference")
}

func initialCentroids() [][]float64 {
	cents := make([][]float64, clusters)
	for c := range cents {
		cents[c] = make([]float64, dims)
		synthPoint(c, cents[c]) // first points seed the centroids
	}
	return cents
}

func assign(p []float64, cents [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c := range cents {
		d := 0.0
		for i := range p {
			diff := p[i] - cents[c][i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func distributed() ([][]float64, error) {
	var mu sync.Mutex
	var result [][]float64
	cfg := core.Config{
		Nodes: 2, PPN: nRanks / 2,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		me := world.Rank()

		// Load the local shard.
		points := make([][]float64, perRank)
		for i := range points {
			points[i] = make([]float64, dims)
			synthPoint(me*perRank+i, points[i])
		}
		cents := initialCentroids()

		// sums holds per-cluster coordinate sums then counts:
		// clusters*dims doubles + clusters doubles.
		local := mpi.JVM().MustArray(jvm.Double, clusters*dims+clusters)
		global := mpi.JVM().MustArray(jvm.Double, clusters*dims+clusters)

		for it := 0; it < iterLimit; it++ {
			for i := 0; i < local.Len(); i++ {
				local.SetFloat(i, 0)
			}
			for _, p := range points {
				c := assign(p, cents)
				for d := 0; d < dims; d++ {
					j := c*dims + d
					local.SetFloat(j, local.Float(j)+p[d])
				}
				j := clusters*dims + c
				local.SetFloat(j, local.Float(j)+1)
			}
			if err := world.Allreduce(local, global, local.Len(), core.DOUBLE, core.SUM); err != nil {
				return err
			}
			for c := 0; c < clusters; c++ {
				n := global.Float(clusters*dims + c)
				if n == 0 {
					continue
				}
				for d := 0; d < dims; d++ {
					cents[c][d] = global.Float(c*dims+d) / n
				}
			}
		}
		if me == 0 {
			mu.Lock()
			result = cents
			mu.Unlock()
		}
		return nil
	})
	return result, err
}

func serial() [][]float64 {
	total := nRanks * perRank
	points := make([][]float64, total)
	for i := range points {
		points[i] = make([]float64, dims)
		synthPoint(i, points[i])
	}
	cents := initialCentroids()
	for it := 0; it < iterLimit; it++ {
		sums := make([][]float64, clusters)
		counts := make([]float64, clusters)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for _, p := range points {
			c := assign(p, cents)
			for d := range p {
				sums[c][d] += p[d]
			}
			counts[c]++
		}
		for c := 0; c < clusters; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				cents[c][d] = sums[c][d] / counts[c]
			}
		}
	}
	return cents
}
