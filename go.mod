module mv2j

go 1.22
