package mv2j_test

// One benchmark per figure of the paper's evaluation (Figs. 5-18).
// Each bench re-runs that figure's sweep on the simulated cluster and
// reports the figure's headline quantities as custom metrics — the
// virtual-time latencies/bandwidths and the cross-library factors the
// paper quotes. ns/op is host simulation cost, NOT the modeled
// latency; read the custom metrics.
//
//	go test -bench 'Fig' -benchmem
//
// cmd/experiments prints the same sweeps as full row-by-row series.

import (
	"math"
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/omb"
	"mv2j/internal/profile"
)

func benchCfg(lib string, flavor core.Flavor, nodes, ppn int, mode omb.Mode, o omb.Options) omb.Config {
	prof, ok := profile.ByName(lib)
	if !ok {
		panic("unknown profile " + lib)
	}
	return omb.Config{
		Core: core.Config{Nodes: nodes, PPN: ppn, Lib: prof, Flavor: flavor},
		Mode: mode,
		Opts: o,
	}
}

func benchOpts(minSize, maxSize int) omb.Options {
	return omb.Options{
		MinSize: minSize, MaxSize: maxSize,
		Iters: 20, Warmup: 3,
		LargeThreshold: 64 << 10, LargeIters: 5,
		Window: 64,
	}
}

func mustRun(b *testing.B, bench string, cfg omb.Config) []omb.Result {
	b.Helper()
	rows, err := omb.RunBenchmark(bench, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func geoFactor(b *testing.B, num, den []omb.Result) float64 {
	b.Helper()
	logSum, n := 0.0, 0
	for _, r := range num {
		for _, q := range den {
			if q.Size == r.Size && r.LatencyUs > 0 && q.LatencyUs > 0 {
				logSum += math.Log(r.LatencyUs / q.LatencyUs)
				n++
			}
		}
	}
	if n == 0 {
		b.Fatal("no common sizes")
	}
	return math.Exp(logSum / float64(n))
}

func at(rows []omb.Result, size int) omb.Result {
	for _, r := range rows {
		if r.Size == size {
			return r
		}
	}
	return omb.Result{}
}

// latencyFigure runs the four-series latency comparison of
// Figs. 5/6/9/10 and reports the MV2-vs-OMPI buffer factor plus the
// per-series latency at a representative size.
func latencyFigure(b *testing.B, nodes, ppn, minSize, maxSize, repSize int) {
	o := benchOpts(minSize, maxSize)
	var factor, mv2BufUs, mv2ArrUs, ompiBufUs float64
	for i := 0; i < b.N; i++ {
		mv2Buf := mustRun(b, "latency", benchCfg("mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeBuffer, o))
		mv2Arr := mustRun(b, "latency", benchCfg("mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeArrays, o))
		ompiBuf := mustRun(b, "latency", benchCfg("openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeBuffer, o))
		_ = mustRun(b, "latency", benchCfg("openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeArrays, o))
		factor = geoFactor(b, ompiBuf, mv2Buf)
		mv2BufUs = at(mv2Buf, repSize).LatencyUs
		mv2ArrUs = at(mv2Arr, repSize).LatencyUs
		ompiBufUs = at(ompiBuf, repSize).LatencyUs
	}
	b.ReportMetric(factor, "ompi/mv2-buffer-x")
	b.ReportMetric(mv2BufUs, "mv2-buf-us")
	b.ReportMetric(mv2ArrUs, "mv2-arr-us")
	b.ReportMetric(ompiBufUs, "ompi-buf-us")
}

// bandwidthFigure runs the three-series bandwidth comparison of
// Figs. 7/8/12/13 (Open MPI-J arrays cannot run: the API gap).
func bandwidthFigure(b *testing.B, nodes, ppn, minSize, maxSize, repSize int) {
	o := benchOpts(minSize, maxSize)
	o.Iters = 10
	var mv2Buf, mv2Arr, ompiBuf float64
	for i := 0; i < b.N; i++ {
		r1 := mustRun(b, "bw", benchCfg("mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeBuffer, o))
		r2 := mustRun(b, "bw", benchCfg("mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeArrays, o))
		r3 := mustRun(b, "bw", benchCfg("openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeBuffer, o))
		if _, err := omb.Bandwidth(benchCfg("openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeArrays, o)); err == nil {
			b.Fatal("Open MPI-J arrays bandwidth must be unsupported")
		}
		mv2Buf = at(r1, repSize).MBps
		mv2Arr = at(r2, repSize).MBps
		ompiBuf = at(r3, repSize).MBps
	}
	b.ReportMetric(mv2Buf, "mv2-buf-MBps")
	b.ReportMetric(mv2Arr, "mv2-arr-MBps")
	b.ReportMetric(ompiBuf, "ompi-buf-MBps")
}

// collectiveFigure runs the 64-rank four-series collective comparison
// of Figs. 14-17 and reports both cross-library factors.
func collectiveFigure(b *testing.B, bench string, minSize, maxSize int) {
	o := benchOpts(minSize, maxSize)
	o.Iters = 8
	var bufFactor, arrFactor float64
	for i := 0; i < b.N; i++ {
		mv2Buf := mustRun(b, bench, benchCfg("mvapich2", core.MVAPICH2J, 4, 16, omb.ModeBuffer, o))
		mv2Arr := mustRun(b, bench, benchCfg("mvapich2", core.MVAPICH2J, 4, 16, omb.ModeArrays, o))
		ompiBuf := mustRun(b, bench, benchCfg("openmpi", core.OpenMPIJ, 4, 16, omb.ModeBuffer, o))
		ompiArr := mustRun(b, bench, benchCfg("openmpi", core.OpenMPIJ, 4, 16, omb.ModeArrays, o))
		bufFactor = geoFactor(b, ompiBuf, mv2Buf)
		arrFactor = geoFactor(b, ompiArr, mv2Arr)
	}
	b.ReportMetric(bufFactor, "buffer-factor-x")
	b.ReportMetric(arrFactor, "arrays-factor-x")
}

// --- Point-to-point latency ---

// BenchmarkFig05IntraNodeLatencySmall: paper factor 2.46x.
func BenchmarkFig05IntraNodeLatencySmall(b *testing.B) { latencyFigure(b, 1, 2, 1, 1024, 8) }

// BenchmarkFig06IntraNodeLatencyLarge.
func BenchmarkFig06IntraNodeLatencyLarge(b *testing.B) { latencyFigure(b, 1, 2, 2048, 4<<20, 1<<20) }

// BenchmarkFig09InterNodeLatencySmall: paper says comparable.
func BenchmarkFig09InterNodeLatencySmall(b *testing.B) { latencyFigure(b, 2, 1, 1, 1024, 8) }

// BenchmarkFig10InterNodeLatencyLarge.
func BenchmarkFig10InterNodeLatencyLarge(b *testing.B) { latencyFigure(b, 2, 1, 2048, 4<<20, 1<<20) }

// --- Bandwidth (no Open MPI-J arrays series) ---

func BenchmarkFig07IntraNodeBandwidthSmall(b *testing.B) { bandwidthFigure(b, 1, 2, 1, 1024, 1024) }
func BenchmarkFig08IntraNodeBandwidthLarge(b *testing.B) {
	bandwidthFigure(b, 1, 2, 2048, 4<<20, 4<<20)
}
func BenchmarkFig12InterNodeBandwidthSmall(b *testing.B) { bandwidthFigure(b, 2, 1, 1, 1024, 1024) }
func BenchmarkFig13InterNodeBandwidthLarge(b *testing.B) {
	bandwidthFigure(b, 2, 1, 2048, 4<<20, 4<<20)
}

// --- Fig. 11: Java layer overhead over the native library ---

func BenchmarkFig11JavaLayerOverhead(b *testing.B) {
	o := benchOpts(1, 8192)
	var mv2Over, ompiOver float64
	overhead := func(j, n []omb.Result) float64 {
		sum, cnt := 0.0, 0
		for _, r := range j {
			for _, q := range n {
				if q.Size == r.Size {
					sum += r.LatencyUs - q.LatencyUs
					cnt++
				}
			}
		}
		return sum / float64(cnt)
	}
	for i := 0; i < b.N; i++ {
		mv2Nat := mustRun(b, "latency", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeNative, o))
		mv2Buf := mustRun(b, "latency", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o))
		ompiNat := mustRun(b, "latency", benchCfg("openmpi", core.OpenMPIJ, 2, 1, omb.ModeNative, o))
		ompiBuf := mustRun(b, "latency", benchCfg("openmpi", core.OpenMPIJ, 2, 1, omb.ModeBuffer, o))
		mv2Over = overhead(mv2Buf, mv2Nat)
		ompiOver = overhead(ompiBuf, ompiNat)
	}
	b.ReportMetric(mv2Over, "mv2-java-overhead-us")
	b.ReportMetric(ompiOver, "ompi-java-overhead-us")
}

// --- Collectives at 4 nodes x 16 ppn ---

// BenchmarkFig14BcastSmall / Fig15: paper avg factors 6.2x (buffer),
// 2.2x (arrays) over all sizes.
func BenchmarkFig14BcastSmall(b *testing.B) { collectiveFigure(b, "bcast", 1, 1024) }
func BenchmarkFig15BcastLarge(b *testing.B) { collectiveFigure(b, "bcast", 2048, 1<<20) }

// BenchmarkFig16AllreduceSmall / Fig17: paper avg factors 2.76x
// (buffer), 1.62x (arrays).
func BenchmarkFig16AllreduceSmall(b *testing.B) { collectiveFigure(b, "allreduce", 1, 1024) }
func BenchmarkFig17AllreduceLarge(b *testing.B) { collectiveFigure(b, "allreduce", 2048, 1<<20) }

// --- Fig. 18: validated latency (arrays overtake buffers) ---

func BenchmarkFig18ValidationLatency(b *testing.B) {
	o := benchOpts(1, 4<<20)
	o.Validate = true
	o.Iters = 10
	var crossover, ratio4MB float64
	for i := 0; i < b.N; i++ {
		arrays := mustRun(b, "latency", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeArrays, o))
		buffers := mustRun(b, "latency", benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o))
		crossover = -1
		for j := range arrays {
			if arrays[j].LatencyUs < buffers[j].LatencyUs {
				crossover = float64(arrays[j].Size)
				break
			}
		}
		last := len(arrays) - 1
		ratio4MB = buffers[last].LatencyUs / arrays[last].LatencyUs
	}
	b.ReportMetric(crossover, "crossover-bytes")
	b.ReportMetric(ratio4MB, "4MB-buffer/array-x")
}
