// Command experiments regenerates every figure of the paper's
// evaluation (Figs. 5–18) on the simulated cluster and prints each
// series under the paper's legend names, plus the headline
// average-factor numbers the paper quotes (e.g. bcast 6.2x, allreduce
// 2.76x). Run with -fig to select one figure, or no flags for all.
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -fig 14    # just Fig. 14
//	go run ./cmd/experiments -quick     # smaller sweeps and ranks
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"mv2j/internal/core"
	"mv2j/internal/npb"
	"mv2j/internal/omb"
	"mv2j/internal/profile"
)

var quick bool

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (0 = all)")
	extended := flag.Bool("extended", false, "also run the beyond-paper exhibits (one-sided, non-blocking overlap, NPB kernels)")
	flag.BoolVar(&quick, "quick", false, "smaller sweeps and communicators")
	flag.Parse()

	figs := map[int]func(){
		5: fig05, 6: fig06, 7: fig07, 8: fig08, 9: fig09, 10: fig10,
		11: fig11, 12: fig12, 13: fig13, 14: fig14, 15: fig15,
		16: fig16, 17: fig17, 18: fig18,
	}
	if *fig != 0 {
		fn, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", *fig)
			os.Exit(2)
		}
		fn()
		return
	}
	var order []int
	for n := range figs {
		order = append(order, n)
	}
	sort.Ints(order)
	for _, n := range order {
		figs[n]()
	}
	if *extended {
		extOneSided()
		extNonBlocking()
		extScaling()
		extNPB()
	}
}

// extScaling sweeps the communicator size for a fixed small bcast —
// the scaling dimension the paper's fixed-64-rank evaluation leaves
// out.
func extScaling() {
	sizes := []int{8, 16, 32, 64, 128}
	if quick {
		sizes = []int{8, 16}
	}
	o := opts(64, 64)
	fmt.Printf("\n# Extended: 64B broadcast latency vs ranks (16 ppn)\n")
	fmt.Printf("%-8s %20s %20s %8s\n", "ranks", "MVAPICH2-J (us)", "Open MPI-J (us)", "factor")
	for _, p := range sizes {
		nodes := (p + 15) / 16
		ppn := p / nodes
		mv2 := runSeries("", "bcast", "mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeBuffer, o)
		ompi := runSeries("", "bcast", "openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeBuffer, o)
		if mv2.err != nil || ompi.err != nil {
			fmt.Fprintf(os.Stderr, "scaling %d: %v %v\n", p, mv2.err, ompi.err)
			continue
		}
		a, _ := lookup(mv2.rows, 64)
		b, _ := lookup(ompi.rows, 64)
		fmt.Printf("%-8d %20.2f %20.2f %7.2fx\n", p, a, b, b/a)
	}
}

// --- Beyond-paper exhibits ---

func extOneSided() {
	o := opts(1, 64<<10)
	ss := []series{
		runSeries("RMA put+fence", "put", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o),
		runSeries("RMA get+fence", "get", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o),
		runSeries("RMA acc+fence", "acc", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o),
	}
	printSeries("Extended: one-sided latency (fence epochs, direct buffers)", "us", ss)
}

func extNonBlocking() {
	o := opts(1, 64<<10)
	nodes, ppn := 2, 4
	if quick {
		ppn = 2
	}
	lat, err := omb.NonBlockingLatency("ibcast", mkCfg("mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeBuffer, o))
	if err != nil {
		fmt.Fprintln(os.Stderr, "extended ibcast:", err)
		return
	}
	ov, err := omb.NonBlockingOverlap("ibcast", mkCfg("mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeBuffer, o))
	if err != nil {
		fmt.Fprintln(os.Stderr, "extended ibcast overlap:", err)
		return
	}
	fmt.Printf("\n# Extended: non-blocking bcast (Ibcast) on %dx%d ranks\n", nodes, ppn)
	fmt.Printf("%-10s %14s %12s\n", "size(B)", "latency(us)", "overlap(%)")
	for i := range lat {
		fmt.Printf("%-10d %14.2f %12.1f\n", lat[i].Size, lat[i].LatencyUs, ov[i].MBps)
	}
}

func extNPB() {
	shapes := [2]int{2, 8}
	if quick {
		shapes = [2]int{2, 2}
	}
	fmt.Printf("\n# Extended: NPB-style kernels on %dx%d ranks (virtual makespans)\n", shapes[0], shapes[1])
	fmt.Printf("%-8s %18s %18s %8s\n", "kernel", "mvapich2 (us)", "openmpi (us)", "factor")
	type runner func(lib string, flavor core.Flavor) (npb.Result, error)
	kernels := []struct {
		name string
		run  runner
	}{
		{"ep", func(lib string, fl core.Flavor) (npb.Result, error) {
			return npb.RunEP(npb.EPConfig{LogPairs: 16, Nodes: shapes[0], PPN: shapes[1], Lib: lib, Flavor: fl})
		}},
		{"cg", func(lib string, fl core.Flavor) (npb.Result, error) {
			p := shapes[0] * shapes[1]
			n := 1024 - 1024%p
			return npb.RunCG(npb.CGConfig{N: n, Band: 8, PowerIters: 3, CGIters: 10,
				Nodes: shapes[0], PPN: shapes[1], Lib: lib, Flavor: fl})
		}},
		{"is", func(lib string, fl core.Flavor) (npb.Result, error) {
			return npb.RunIS(npb.ISConfig{KeysPerRank: 20000, MaxKey: 1 << 20,
				Nodes: shapes[0], PPN: shapes[1], Lib: lib, Flavor: fl})
		}},
	}
	for _, k := range kernels {
		mv2, err := k.run("mvapich2", core.MVAPICH2J)
		if err != nil {
			fmt.Fprintf(os.Stderr, "extended %s: %v\n", k.name, err)
			continue
		}
		ompi, err := k.run("openmpi", core.OpenMPIJ)
		if err != nil {
			fmt.Fprintf(os.Stderr, "extended %s: %v\n", k.name, err)
			continue
		}
		if !mv2.Verified || !ompi.Verified {
			fmt.Fprintf(os.Stderr, "extended %s: verification failed\n", k.name)
			continue
		}
		fmt.Printf("%-8s %18.1f %18.1f %7.2fx\n", k.name,
			mv2.Makespan.Micros(), ompi.Makespan.Micros(),
			ompi.Makespan.Micros()/mv2.Makespan.Micros())
	}
}

type series struct {
	label string
	rows  []omb.Result
	err   error
}

func mkCfg(lib string, flavor core.Flavor, nodes, ppn int, mode omb.Mode, opts omb.Options) omb.Config {
	prof, ok := profile.ByName(lib)
	if !ok {
		panic("unknown profile " + lib)
	}
	return omb.Config{
		Core: core.Config{Nodes: nodes, PPN: ppn, Lib: prof, Flavor: flavor},
		Mode: mode,
		Opts: opts,
	}
}

func runSeries(label, bench, lib string, flavor core.Flavor, nodes, ppn int, mode omb.Mode, opts omb.Options) series {
	rows, err := omb.RunBenchmark(bench, mkCfg(lib, flavor, nodes, ppn, mode, opts))
	return series{label: label, rows: rows, err: err}
}

// fourWay runs the paper's standard comparison:
// {MVAPICH2-J, Open MPI-J} x {buffer, arrays}.
func fourWay(bench string, nodes, ppn int, opts omb.Options) []series {
	return []series{
		runSeries("MVAPICH2-J buffer", bench, "mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeBuffer, opts),
		runSeries("MVAPICH2-J arrays", bench, "mvapich2", core.MVAPICH2J, nodes, ppn, omb.ModeArrays, opts),
		runSeries("Open MPI-J buffer", bench, "openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeBuffer, opts),
		runSeries("Open MPI-J arrays", bench, "openmpi", core.OpenMPIJ, nodes, ppn, omb.ModeArrays, opts),
	}
}

func opts(minSize, maxSize int) omb.Options {
	o := omb.DefaultOptions()
	o.MinSize, o.MaxSize = minSize, maxSize
	if quick {
		o.Iters, o.Warmup, o.LargeIters = 10, 2, 3
	}
	return o
}

func printSeries(title, unit string, ss []series) {
	fmt.Printf("\n# %s  [%s]\n", title, unit)
	sizes := map[int]bool{}
	for _, s := range ss {
		for _, r := range s.rows {
			sizes[r.Size] = true
		}
	}
	var order []int
	for s := range sizes {
		order = append(order, s)
	}
	sort.Ints(order)
	fmt.Printf("%-10s", "size(B)")
	for _, s := range ss {
		fmt.Printf("  %20s", s.label)
	}
	fmt.Println()
	for _, size := range order {
		fmt.Printf("%-10d", size)
		for _, s := range ss {
			switch {
			case s.err != nil:
				fmt.Printf("  %20s", "n/a")
			default:
				v, ok := lookup(s.rows, size)
				if !ok {
					fmt.Printf("  %20s", "-")
				} else {
					fmt.Printf("  %20.2f", v)
				}
			}
		}
		fmt.Println()
	}
	for _, s := range ss {
		if s.err != nil {
			fmt.Printf("  note: %s: %v\n", s.label, s.err)
		}
	}
}

func lookup(rows []omb.Result, size int) (float64, bool) {
	for _, r := range rows {
		if r.Size == size {
			if r.MBps != 0 {
				return r.MBps, true
			}
			return r.LatencyUs, true
		}
	}
	return 0, false
}

// geoFactor is the geometric-mean latency ratio num/den over common
// sizes — the paper's "on average for all message sizes" factor.
func geoFactor(num, den series) float64 {
	logSum, n := 0.0, 0
	for _, r := range num.rows {
		for _, q := range den.rows {
			if q.Size == r.Size && r.LatencyUs > 0 && q.LatencyUs > 0 {
				logSum += math.Log(r.LatencyUs / q.LatencyUs)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// --- Point-to-point latency (Figs. 5, 6, 9, 10) ---

func fig05() {
	ss := fourWay("latency", 1, 2, opts(1, 1024))
	printSeries("Fig. 5: intra-node latency, small messages", "us", ss)
	fmt.Printf("  avg factor OMPI-J buffer / MV2-J buffer = %.2fx (paper: 2.46x)\n",
		geoFactor(ss[2], ss[0]))
}

func fig06() {
	printSeries("Fig. 6: intra-node latency, large messages", "us",
		fourWay("latency", 1, 2, opts(2048, 4<<20)))
}

func fig09() {
	ss := fourWay("latency", 2, 1, opts(1, 1024))
	printSeries("Fig. 9: inter-node latency, small messages", "us", ss)
	fmt.Printf("  avg factor OMPI-J buffer / MV2-J buffer = %.2fx (paper: comparable)\n",
		geoFactor(ss[2], ss[0]))
}

func fig10() {
	printSeries("Fig. 10: inter-node latency, large messages", "us",
		fourWay("latency", 2, 1, opts(2048, 4<<20)))
}

// --- Bandwidth (Figs. 7, 8, 12, 13): no Open MPI-J arrays series ---

func fig07() {
	printSeries("Fig. 7: intra-node bandwidth, small messages", "MB/s",
		fourWay("bw", 1, 2, opts(1, 1024)))
}

func fig08() {
	printSeries("Fig. 8: intra-node bandwidth, large messages", "MB/s",
		fourWay("bw", 1, 2, opts(2048, 4<<20)))
}

func fig12() {
	printSeries("Fig. 12: inter-node bandwidth, small messages", "MB/s",
		fourWay("bw", 2, 1, opts(1, 1024)))
}

func fig13() {
	printSeries("Fig. 13: inter-node bandwidth, large messages", "MB/s",
		fourWay("bw", 2, 1, opts(2048, 4<<20)))
}

// --- Fig. 11: Java layer overhead (bindings vs native, buffers) ---

func fig11() {
	o := opts(1, 8192)
	ss := []series{
		runSeries("MVAPICH2 native", "latency", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeNative, o),
		runSeries("MVAPICH2-J buffer", "latency", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o),
		runSeries("Open MPI native", "latency", "openmpi", core.OpenMPIJ, 2, 1, omb.ModeNative, o),
		runSeries("Open MPI-J buffer", "latency", "openmpi", core.OpenMPIJ, 2, 1, omb.ModeBuffer, o),
	}
	printSeries("Fig. 11: inter-node latency, native vs Java bindings", "us", ss)
	mv2 := avgOverhead(ss[1], ss[0])
	omp := avgOverhead(ss[3], ss[2])
	fmt.Printf("  avg Java-layer overhead: MVAPICH2-J %.2fus, Open MPI-J %.2fus (paper: ~1us ballpark, MV2-J smaller)\n", mv2, omp)
}

func avgOverhead(j, native series) float64 {
	sum, n := 0.0, 0
	for _, r := range j.rows {
		for _, q := range native.rows {
			if q.Size == r.Size {
				sum += r.LatencyUs - q.LatencyUs
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- Collectives (Figs. 14-17): 4 nodes x 16 ppn = 64 ranks ---

func collShape() (nodes, ppn int) {
	if quick {
		return 2, 4
	}
	return 4, 16
}

func fig14() {
	nodes, ppn := collShape()
	ss := fourWay("bcast", nodes, ppn, opts(1, 1024))
	printSeries(fmt.Sprintf("Fig. 14: broadcast latency, small messages (%dx%d ranks)", nodes, ppn), "us", ss)
	reportCollFactors("bcast small", ss)
}

func fig15() {
	nodes, ppn := collShape()
	ss := fourWay("bcast", nodes, ppn, opts(2048, 1<<20))
	printSeries("Fig. 15: broadcast latency, large messages", "us", ss)
	reportCollFactors("bcast large (paper avg over all sizes: buffer 6.2x, arrays 2.2x)", ss)
}

func fig16() {
	nodes, ppn := collShape()
	ss := fourWay("allreduce", nodes, ppn, opts(1, 1024))
	printSeries(fmt.Sprintf("Fig. 16: allreduce latency, small messages (%dx%d ranks)", nodes, ppn), "us", ss)
	reportCollFactors("allreduce small", ss)
}

func fig17() {
	nodes, ppn := collShape()
	ss := fourWay("allreduce", nodes, ppn, opts(2048, 1<<20))
	printSeries("Fig. 17: allreduce latency, large messages", "us", ss)
	reportCollFactors("allreduce large (paper avg over all sizes: buffer 2.76x, arrays 1.62x)", ss)
}

func reportCollFactors(what string, ss []series) {
	fmt.Printf("  %s: OMPI-J/MV2-J factor buffer=%.2fx arrays=%.2fx\n",
		what, geoFactor(ss[2], ss[0]), geoFactor(ss[3], ss[1]))
}

// --- Fig. 18: latency with data validation (arrays vs buffers) ---

func fig18() {
	o := opts(1, 4<<20)
	o.Validate = true
	ss := []series{
		runSeries("MVAPICH2-J arrays", "latency", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeArrays, o),
		runSeries("MVAPICH2-J buffer", "latency", "mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o),
	}
	printSeries("Fig. 18: inter-node latency WITH data validation", "us", ss)
	// Crossover and the 4MB ratio the paper quotes (~3x).
	cross := -1
	for _, r := range ss[0].rows {
		if b, ok := lookup(ss[1].rows, r.Size); ok && r.LatencyUs < b {
			cross = r.Size
			break
		}
	}
	big := 4 << 20
	a, _ := lookup(ss[0].rows, big)
	b, _ := lookup(ss[1].rows, big)
	ratio := 0.0
	if a > 0 {
		ratio = b / a
	}
	fmt.Printf("  arrays overtake buffers at %dB (paper: after 256B); 4MB buffer/arrays = %.2fx (paper: ~3x)\n",
		cross, ratio)
}
