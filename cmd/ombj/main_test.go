package main

import "testing"

func TestParseRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"1:4194304", 1, 4194304, true},
		{"64:64", 64, 64, true},
		{"8:4", 0, 0, false},
		{"0:16", 0, 0, false},
		{"16", 0, 0, false},
		{"a:b", 0, 0, false},
		{"1:b", 0, 0, false},
		{":", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in)
		if c.ok {
			if err != nil || lo != c.lo || hi != c.hi {
				t.Errorf("parseRange(%q) = %d,%d,%v; want %d,%d", c.in, lo, hi, err, c.lo, c.hi)
			}
		} else if err == nil {
			t.Errorf("parseRange(%q) accepted invalid input", c.in)
		}
	}
}

func TestMaxHelper(t *testing.T) {
	if max(3, 5) != 5 || max(5, 3) != 5 {
		t.Fatal("max broken")
	}
}
