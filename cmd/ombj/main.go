// Command ombj is the OMB-J benchmark runner: the Java-bindings
// counterpart of the OSU Micro-Benchmarks CLI, for the simulated
// cluster. It mirrors OMB's flag conventions where they make sense.
//
// Examples:
//
//	ombj -b latency -nodes 2 -ppn 1 -lib mvapich2 -mode buffer
//	ombj -b bcast -nodes 4 -ppn 16 -lib openmpi -mode arrays -m 1:1048576
//	ombj -b latency -validate -m 1:4194304      # the Fig. 18 experiment
//	ombj -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mv2j/internal/core"
	"mv2j/internal/faults"
	"mv2j/internal/obs"
	"mv2j/internal/omb"
	"mv2j/internal/profile"
)

func main() {
	var (
		bench    = flag.String("b", "latency", "benchmark name (see -list): point-to-point (latency, bw, bibw, mbw, mr), collectives (bcast, allreduce, ... and v-variants, barrier), non-blocking (ibcast, iallreduce, ibarrier), one-sided (put, get, acc)")
		lib      = flag.String("lib", "mvapich2", "native library profile: mvapich2 | openmpi")
		flavor   = flag.String("bindings", "", "bindings flavor: mv2j | ompij (defaults to match -lib)")
		mode     = flag.String("mode", "buffer", "payload container: buffer | arrays | native")
		nodes    = flag.Int("nodes", 2, "simulated nodes")
		ppn      = flag.Int("ppn", 1, "ranks per node")
		msgRange = flag.String("m", "1:4194304", "message size range min:max (bytes, powers of two)")
		iters    = flag.Int("i", 50, "iterations per size")
		warmup   = flag.Int("x", 5, "warmup iterations per size")
		window   = flag.Int("w", 64, "bandwidth window size")
		validate = flag.Bool("validate", false, "populate and verify payloads inside the timed region")
		ft       = flag.Bool("ft", false, "run collectives under the fault-tolerant driver: injected rank crashes shrink the communicator and the sweep resumes from the last agreed iteration instead of aborting (pair with -faults \"crash=R@T\")")
		faultS   = flag.String("faults", "", `fault-injection plan, e.g. "seed=42,drop=0.01" or "inter.drop=0.05,target=drop:2>5:match:3" (see internal/faults)`)
		list     = flag.Bool("list", false, "list benchmarks and exit")

		threads = flag.Int("threads", 0, "simulated threads per rank for the MPI_THREAD_MULTIPLE benchmarks (mr-mt, kvservice; 0 = benchmark default)")
		clients = flag.Int("clients", 0, "simulated client population for kvservice (0 = benchmark default)")

		credits     = flag.Int("credits", 0, "per-peer eager send credits: senders with no credit park until the receiver returns some (0 = flow control off)")
		creditBatch = flag.Int("credit-batch", 0, "consumed messages per explicit credit grant (0 = credits/2)")
		unexpBytes  = flag.Int64("unexp-queue-bytes", 0, "receiver unexpected-queue byte bound; past half of it eager senders demote to rendezvous (0 = credits x 64KiB)")
	)
	var sink obs.Sink
	sink.AddFlags()
	flag.Parse()

	if *list {
		for _, b := range omb.Benchmarks() {
			fmt.Println(b)
		}
		return
	}

	minSize, maxSize, err := parseRange(*msgRange)
	if err != nil {
		fatal(err)
	}
	prof, ok := profile.ByName(*lib)
	if !ok {
		fatal(fmt.Errorf("unknown library %q (mvapich2 | openmpi)", *lib))
	}
	if *credits != 0 {
		prof.EagerCredits = *credits
	}
	if *creditBatch != 0 {
		prof.CreditBatch = *creditBatch
	}
	if *unexpBytes != 0 {
		prof.UnexpectedQueueBytes = *unexpBytes
	}
	if err := prof.Validate(); err != nil {
		fatal(err)
	}
	flv := core.MVAPICH2J
	switch *flavor {
	case "":
		if prof.Name == "openmpi" {
			flv = core.OpenMPIJ
		}
	case "mv2j", "mvapich2-j":
		flv = core.MVAPICH2J
	case "ompij", "openmpi-j":
		flv = core.OpenMPIJ
	default:
		fatal(fmt.Errorf("unknown bindings flavor %q", *flavor))
	}
	var md omb.Mode
	switch *mode {
	case "buffer":
		md = omb.ModeBuffer
	case "arrays":
		md = omb.ModeArrays
	case "native":
		md = omb.ModeNative
	default:
		fatal(fmt.Errorf("unknown mode %q (buffer | arrays | native)", *mode))
	}

	var plan *faults.Plan
	if *faultS != "" {
		if plan, err = faults.ParseSpec(*faultS); err != nil {
			fatal(err)
		}
	}

	sink.PPN = *ppn
	cfg := omb.Config{
		Core: core.Config{Nodes: *nodes, PPN: *ppn, Lib: prof, Flavor: flv, Faults: plan,
			Trace: sink.Recorder(), Metrics: sink.Registry()},
		Mode: md,
		Opts: omb.Options{
			MinSize: minSize, MaxSize: maxSize,
			Iters: *iters, Warmup: *warmup,
			LargeThreshold: 64 << 10, LargeIters: max(2, *iters/5),
			Window: *window, Validate: *validate,
			FT:      *ft,
			Threads: *threads, Clients: *clients,
		},
	}

	rows, err := omb.RunBenchmark(*bench, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# OMB-J %s: %s / %s / %s, %d nodes x %d ppn\n",
		*bench, prof.Name, flv, md, *nodes, *ppn)
	if *validate {
		fmt.Println("# data validation enabled")
	}
	if plan != nil {
		fmt.Printf("# fault injection: %s\n", *faultS)
	}
	if *ft {
		fmt.Println("# fault tolerance: shrink-and-continue")
	}
	isBW := *bench == "bw" || *bench == "bibw" || *bench == "mbw"
	isRate := *bench == "mr" || *bench == "mr-overload" || *bench == "mr-mt" || *bench == "kvservice"
	switch {
	case isBW:
		fmt.Printf("%-12s%16s\n", "# Size", "Bandwidth (MB/s)")
	case isRate:
		fmt.Printf("%-12s%16s\n", "# Size", "Messages/s")
	default:
		fmt.Printf("%-12s%16s\n", "# Size", "Latency (us)")
	}
	for _, r := range rows {
		if isBW || isRate {
			fmt.Printf("%-12d%16.2f\n", r.Size, r.MBps)
		} else {
			fmt.Printf("%-12d%16.2f\n", r.Size, r.LatencyUs)
		}
	}
	if err := sink.Flush(os.Stdout); err != nil {
		fatal(err)
	}
}

func parseRange(s string) (int, int, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q, want min:max", s)
	}
	lo, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad range minimum %q", parts[0])
	}
	hi, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad range maximum %q", parts[1])
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("range %d:%d out of order", lo, hi)
	}
	return lo, hi, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ombj:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
