// Command mv2jbench runs the deterministic host-performance harness
// over the OMB-J suites and writes BENCH_OMB.json — host ns/op and
// allocs/op for each suite next to the virtual-time figures the same
// sweep produces. Virtual results are byte-identical regardless of
// host speed; this tool measures what the simulation costs, never what
// it computes.
//
// Usage:
//
//	mv2jbench                 # full tier: latency/bw + allreduce np∈{2,8,32,128}
//	mv2jbench -quick          # CI tier: short sweeps at np∈{2,8} + np-scaling ladder
//	mv2jbench -workers 1      # pin the engine pool to the serial reference width
//	mv2jbench -compare BENCH_OMB.json
//	                          # host-metric guardrail vs a checked-in baseline
//	mv2jbench -compare BENCH_OMB.json -summary "$GITHUB_STEP_SUMMARY"
//	                          # ... and publish the verdicts as a markdown table
//
// With -compare, the exit status is 1 if any suite's allocs/op or
// bytes-copied regressed beyond -tolerance (or the suite plans
// diverged); large improvements only warn, prompting a baseline
// re-pin.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"mv2j/internal/hostbench"
)

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	quick := flag.Bool("quick", false, "run the short CI tier (np∈{2,8}, small sweeps)")
	out := flag.String("out", "BENCH_OMB.json", "output path for the report")
	compare := flag.String("compare", "", "baseline BENCH_OMB.json to apply the host-metric guardrail against")
	tol := flag.Float64("tolerance", 0.20, "fractional per-metric tolerance for -compare")
	workers := flag.Int("workers", 0, "scale-out engine pool width for every suite (0 = GOMAXPROCS, 1 = serial reference)")
	summary := flag.String("summary", "", "with -compare: append the guardrail result as a markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	rep, err := hostbench.Run(*quick, *workers, gitSHA(), func(line string) {
		fmt.Fprintln(os.Stderr, line)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mv2jbench:", err)
		os.Exit(1)
	}
	data, err := rep.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mv2jbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mv2jbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d suites)\n", *out, len(rep.Entries))

	if *compare == "" {
		return
	}
	baseData, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mv2jbench:", err)
		os.Exit(1)
	}
	baseline, err := hostbench.Parse(baseData)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mv2jbench:", err)
		os.Exit(1)
	}
	deltas, failed := hostbench.Compare(baseline, rep, *tol)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mv2jbench:", err)
			os.Exit(1)
		}
		if _, err := f.WriteString(hostbench.Markdown(deltas, *tol)); err != nil {
			fmt.Fprintln(os.Stderr, "mv2jbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mv2jbench:", err)
			os.Exit(1)
		}
	}
	improved := false
	for _, d := range deltas {
		fmt.Fprintln(os.Stderr, d)
		if d.Verdict == hostbench.Improvement {
			improved = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "mv2jbench: host-metric guardrail FAILED (tolerance ±%.0f%%)\n", *tol*100)
		os.Exit(1)
	}
	if improved {
		fmt.Fprintf(os.Stderr, "mv2jbench: host metrics improved beyond %.0f%% — re-pin the baseline (%s) to lock it in\n", *tol*100, *compare)
	}
	fmt.Fprintln(os.Stderr, "mv2jbench: guardrail ok")
}
