// Command mv2jrun is the mpirun of the simulated cluster: it launches
// one of the bundled demo programs on a chosen topology and library.
//
//	mv2jrun -app hello -nodes 2 -ppn 4
//	mv2jrun -app ring -nodes 4 -ppn 2 -lib openmpi
//	mv2jrun -app stats -nodes 2 -ppn 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/faults"
	"mv2j/internal/jvm"
	"mv2j/internal/obs"
	"mv2j/internal/profile"
	"mv2j/internal/trace"
)

var stdout sync.Mutex

func say(format string, args ...any) {
	stdout.Lock()
	defer stdout.Unlock()
	fmt.Printf(format+"\n", args...)
}

// apps maps names to SPMD bodies.
var apps = map[string]func(mpi *core.MPI) error{
	"hello":     hello,
	"ring":      ring,
	"stats":     stats,
	"resilient": resilient,
}

func main() {
	app := flag.String("app", "hello", "demo program: hello | ring | stats | resilient")
	nodes := flag.Int("nodes", 2, "simulated nodes")
	ppn := flag.Int("ppn", 2, "ranks per node")
	lib := flag.String("lib", "mvapich2", "native library: mvapich2 | openmpi")
	doTrace := flag.Bool("trace", false, "print the virtual-time event timeline after the run")
	faultS := flag.String("faults", "", `fault-injection plan, e.g. "seed=42,drop=0.01" or "crash=2@60us" (see internal/faults)`)
	ft := flag.Bool("ft", false, "enable ULFM-style fault tolerance: rank crashes surface as recoverable errors (Revoke/Shrink/AgreeShrink) instead of aborting; try -app resilient -ft -faults crash=2@60us")
	credits := flag.Int("credits", 0, "per-peer eager send credits: senders with no credit park until the receiver returns some (0 = flow control off)")
	creditBatch := flag.Int("credit-batch", 0, "consumed messages per explicit credit grant (0 = credits/2)")
	unexpBytes := flag.Int64("unexp-queue-bytes", 0, "receiver unexpected-queue byte bound; past half of it eager senders demote to rendezvous (0 = credits x 64KiB)")
	var sink obs.Sink
	sink.AddFlags()
	flag.Parse()

	body, ok := apps[*app]
	if !ok {
		var names []string
		for n := range apps {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "mv2jrun: unknown app %q (have %v)\n", *app, names)
		os.Exit(2)
	}
	prof, ok := profile.ByName(*lib)
	if !ok {
		fmt.Fprintf(os.Stderr, "mv2jrun: unknown library %q\n", *lib)
		os.Exit(2)
	}
	if *credits != 0 {
		prof.EagerCredits = *credits
	}
	if *creditBatch != 0 {
		prof.CreditBatch = *creditBatch
	}
	if *unexpBytes != 0 {
		prof.UnexpectedQueueBytes = *unexpBytes
	}
	if err := prof.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mv2jrun:", err)
		os.Exit(2)
	}
	flavor := core.MVAPICH2J
	if prof.Name == "openmpi" {
		flavor = core.OpenMPIJ
	}
	cfg := core.Config{Nodes: *nodes, PPN: *ppn, Lib: prof, Flavor: flavor, FT: *ft}
	if *faultS != "" {
		plan, err := faults.ParseSpec(*faultS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mv2jrun:", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	sink.PPN = *ppn
	var rec *trace.Recorder
	if *doTrace {
		rec = sink.ForceRecorder()
	}
	cfg.Trace = sink.Recorder()
	cfg.Metrics = sink.Registry()
	if err := core.Run(cfg, body); err != nil {
		fmt.Fprintln(os.Stderr, "mv2jrun:", err)
		os.Exit(1)
	}
	if err := sink.Flush(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mv2jrun:", err)
		os.Exit(1)
	}
	if rec != nil {
		fmt.Printf("\n--- trace (%d events) ---\n", rec.Len())
		if err := rec.Timeline(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mv2jrun: trace:", err)
		}
		fmt.Println("--- summary ---")
		for kind, s := range rec.Summary() {
			fmt.Printf("  %-8s count=%-6d bytes=%-10d time=%v\n", kind, s.Count, s.Bytes, s.Time)
		}
	}
}

// hello prints a greeting per rank with node placement.
func hello(mpi *core.MPI) error {
	world := mpi.CommWorld()
	topo := mpi.Proc().World().Topology()
	say("hello from rank %d/%d on node %d (local rank %d)",
		world.Rank(), world.Size(), topo.NodeOf(world.Rank()), topo.LocalRank(world.Rank()))
	return world.Barrier()
}

// ring circulates a counter once around the ranks, each incrementing.
func ring(mpi *core.MPI) error {
	world := mpi.CommWorld()
	me, p := world.Rank(), world.Size()
	token := mpi.JVM().MustArray(jvm.Long, 1)
	if me == 0 {
		token.SetInt(0, 1)
		if err := world.Send(token, 1, core.LONG, (me+1)%p, 0); err != nil {
			return err
		}
		if _, err := world.Recv(token, 1, core.LONG, p-1, 0); err != nil {
			return err
		}
		say("ring complete: token=%d after %d hops (virtual time %v)",
			token.Int(0), p, mpi.Clock().Now())
		if token.Int(0) != int64(p) {
			return fmt.Errorf("ring token %d, want %d", token.Int(0), p)
		}
		return nil
	}
	if _, err := world.Recv(token, 1, core.LONG, me-1, 0); err != nil {
		return err
	}
	token.SetInt(0, token.Int(0)+1)
	return world.Send(token, 1, core.LONG, (me+1)%p, 0)
}

// resilient iterates an allreduce and survives injected rank crashes
// with the ULFM recipe: revoke the broken communicator, shrink it via
// one agreement, agree on the rollback iteration with a MIN reduction,
// and continue on the survivors. Run it with
//
//	mv2jrun -app resilient -ft -faults crash=2@60us -nodes 1 -ppn 4
//
// Without -ft the same crash aborts the whole job, as plain MPI would.
func resilient(mpi *core.MPI) error {
	world := mpi.CommWorld()
	comm := world
	me := world.Rank()
	send := mpi.JVM().MustArray(jvm.Long, 1)
	recv := mpi.JVM().MustArray(jvm.Long, 1)
	const iters = 8
	for iter := 0; iter < iters; {
		send.SetInt(0, int64(me+1))
		err := comm.Allreduce(send, recv, 1, core.LONG, core.SUM)
		if err == nil {
			if comm.Rank() == 0 {
				say("iter %d: %d ranks, sum=%d (t=%v)", iter, comm.Size(), recv.Int(0), mpi.Clock().Now())
			}
			iter++
			continue
		}
		if !core.IsFailure(err) {
			return err
		}
		for {
			if err := comm.Revoke(); err != nil {
				return err
			}
			_, nc, failed, aerr := comm.AgreeShrink(^uint64(0))
			if aerr != nil {
				if core.IsFailure(aerr) {
					continue
				}
				return aerr
			}
			send.SetInt(0, int64(iter))
			if merr := nc.Allreduce(send, recv, 1, core.LONG, core.MIN); merr != nil {
				if core.IsFailure(merr) {
					comm = nc
					continue
				}
				return merr
			}
			say("rank %d: recovered — lost %v, %d survivors, rolling back to iteration %d",
				me, failed, nc.Size(), recv.Int(0))
			comm, iter = nc, int(recv.Int(0))
			break
		}
	}
	return nil
}

// stats runs a few collectives and prints per-rank runtime counters.
func stats(mpi *core.MPI) error {
	world := mpi.CommWorld()
	buf := mpi.JVM().MustAllocateDirect(4096)
	for i := 0; i < 10; i++ {
		if err := world.Bcast(buf, 4096, core.BYTE, 0); err != nil {
			return err
		}
	}
	arr := mpi.JVM().MustArray(jvm.Double, 64)
	out := mpi.JVM().MustArray(jvm.Double, 64)
	if err := world.Allreduce(arr, out, 64, core.DOUBLE, core.SUM); err != nil {
		return err
	}
	ps := mpi.Proc().Stats()
	js := mpi.JNI().Stats()
	pool := mpi.Pool().Stats()
	say("rank %d: sent=%d msgs/%d bytes (eager %d, rndv %d), jni calls=%d copies=%dB, pool hits/misses=%d/%d, vtime=%v",
		world.Rank(), ps.MsgsSent, ps.BytesSent, ps.EagerSends, ps.RndvSends,
		js.Calls, js.CopiedBytes, pool.Hits, pool.Misses, mpi.Clock().Now())
	return nil
}
