// Command npbj runs the NPB-style kernels (EP, CG, IS) on the
// simulated cluster — the application-level benchmarks the paper's
// related work (NPB-MPJ) uses to evaluate Java MPI libraries.
//
//	npbj -kernel ep -nodes 2 -ppn 8 -class 18
//	npbj -kernel cg -nodes 4 -ppn 4 -lib openmpi
//	npbj -kernel is -nodes 2 -ppn 4
package main

import (
	"flag"
	"fmt"
	"os"

	"mv2j/internal/core"
	"mv2j/internal/npb"
	"mv2j/internal/profile"
)

func main() {
	kernel := flag.String("kernel", "ep", "kernel: ep | cg | is")
	nodes := flag.Int("nodes", 2, "simulated nodes")
	ppn := flag.Int("ppn", 4, "ranks per node")
	lib := flag.String("lib", "mvapich2", "library: mvapich2 | openmpi")
	class := flag.Int("class", 16, "problem scale (EP: log2 pairs; CG: N/64; IS: keys/rank / 1000)")
	flag.Parse()

	prof, ok := profile.ByName(*lib)
	if !ok {
		fmt.Fprintf(os.Stderr, "npbj: unknown library %q\n", *lib)
		os.Exit(2)
	}
	flavor := core.MVAPICH2J
	if prof.Name == "openmpi" {
		flavor = core.OpenMPIJ
	}

	var (
		res npb.Result
		err error
	)
	switch *kernel {
	case "ep":
		res, err = npb.RunEP(npb.EPConfig{
			LogPairs: *class, Nodes: *nodes, PPN: *ppn, Lib: *lib, Flavor: flavor,
		})
	case "cg":
		n := *class * 64
		p := *nodes * *ppn
		n -= n % p // keep N divisible by the rank count
		if n < p {
			n = p
		}
		res, err = npb.RunCG(npb.CGConfig{
			N: n, Band: 8, PowerIters: 4, CGIters: 12,
			Nodes: *nodes, PPN: *ppn, Lib: *lib, Flavor: flavor,
		})
	case "is":
		res, err = npb.RunIS(npb.ISConfig{
			KeysPerRank: *class * 1000, MaxKey: 1 << 20,
			Nodes: *nodes, PPN: *ppn, Lib: *lib, Flavor: flavor,
		})
	default:
		fmt.Fprintf(os.Stderr, "npbj: unknown kernel %q (ep | cg | is)\n", *kernel)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "npbj:", err)
		os.Exit(1)
	}
	status := "VERIFICATION SUCCESSFUL"
	if !res.Verified {
		status = "VERIFICATION FAILED"
	}
	fmt.Printf("NPB-J %s on %d x %d ranks (%s)\n", *kernel, *nodes, *ppn, prof.Name)
	fmt.Printf("  %s\n", res.Detail)
	fmt.Printf("  virtual makespan: %v\n", res.Makespan)
	fmt.Printf("  %s\n", status)
	if !res.Verified {
		os.Exit(1)
	}
}
